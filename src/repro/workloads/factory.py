"""Deterministic million-fact scenario factory.

The existing generators in this package enumerate *small* random
instances and rule sets for property tests.  This module produces the
engine's first production-traffic axis: layered, skewed, FK-style
scenarios at 10^6–10^7 facts, streamed to disk (never materialized)
through :class:`~repro.instances.streaming.FactStreamWriter`.

A :class:`WorkloadSpec` pins everything — sizes, shape, seed — so a
spec is a *name* for a byte-exact fact stream:

* **Layered FK levels.** Level ``k`` is a binary relation
  ``Lk(child, parent)``: each level-``k`` entity references a
  level-``k+1`` key (the top level references a small pool of root
  keys), the classic fact-table → dimension → sub-dimension layering.
* **Zipf-distributed sizes.** Rows are split across levels
  proportionally to ``1/(k+1)^skew`` (level 0 is the big fact table),
  and every parent reference is drawn from a Zipf distribution over
  the parent level's keys via a memoized inverse CDF — higher ``skew``
  concentrates references on hub keys, the shape the adaptive join
  order and the columnar executor care about.  For a fixed seed the
  per-draw quantile is monotone in ``skew`` (same uniform variate,
  stochastically smaller index), which the factory's property tests
  assert.
* **Injected violations.** With probability ``violation_rate`` a row
  gains a *second* parent, violating the per-level key FD that
  :func:`constraints_of` states as an egd — chasing with those egds
  must fail with ``StopReason.EGD_FAILURE`` (both parents are
  constants), giving large-scale constraint checking something real
  to find.

:func:`dependencies_of` supplies the join workload: full tgds
``Lk(x, y), Lk+1(y, z) -> Ak(x, z)`` rolling every level up one step.
Full tgds chase to a unique least fixpoint, so streamed, chunked and
in-memory runs must all land on the identical instance — that is what
lets the ``chase-stream`` bench family and the streaming differential
axis assert equality at scale.

Determinism contract: every derived quantity (level sizes, key pools,
the row stream) is a pure function of the spec.  ``generate_rows`` uses
one ``random.Random(seed)`` stream with a fixed per-row draw pattern
(one variate for the parent, one for the violation coin), so two specs
differing only in ``skew`` consume the stream identically — and
identical specs produce byte-identical fact streams.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Iterator

from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..instances.instance import DEFAULT_BACKEND, Instance
from ..instances.streaming import (
    DEFAULT_BATCH_ROWS,
    FactStreamWriter,
    Row,
)
from ..lang.parser import parse_dependency, parse_tgds
from ..lang.schema import Relation, Schema
from ..lang.terms import Const

__all__ = [
    "WorkloadSpec",
    "clear_workload_caches",
    "constraints_of",
    "dependencies_of",
    "generate_rows",
    "level_sizes",
    "materialize",
    "schema_of",
    "write_workload",
]

# Parent keys per level as a fraction of the level's rows: every key
# pool is rows/4 wide (floor 2), so buckets average 4 references before
# skew concentrates them further.
_KEY_DIVISOR = 4

# Memoized Zipf inverse-CDF tables keyed by (pool_size, skew).  Specs
# reuse pool shapes heavily (every row of a level draws from the same
# table), and the bench harness clears this through
# clear_engine_caches so repeats stay cold.
_ZIPF_CDF: dict[tuple[int, float], list[float]] = {}


def clear_workload_caches() -> None:
    """Drop the factory's memoized Zipf tables (cold-cache protocol)."""
    _ZIPF_CDF.clear()


def _zipf_cdf(size: int, skew: float) -> list[float]:
    """Cumulative (unnormalized) Zipf weights over ``size`` ranks."""
    table = _ZIPF_CDF.get((size, skew))
    if table is None:
        table = []
        total = 0.0
        for rank in range(size):
            total += 1.0 / (rank + 1) ** skew
            table.append(total)
        _ZIPF_CDF[size, skew] = table
    return table


def _zipf_draw(rng: Random, table: list[float]) -> int:
    """One inverse-CDF draw: the rank whose cumulative bucket holds
    ``u * total``.  For a fixed variate the rank is monotone
    non-increasing in ``skew`` (heavier skew → earlier buckets grow)."""
    return bisect_left(table, rng.random() * table[-1])


@dataclass(frozen=True)
class WorkloadSpec:
    """A deterministic scenario: the spec *is* the workload's identity.

    ``facts`` counts base rows; injected violations add ~``facts *
    violation_rate`` more.  ``levels`` ≥ 2 so the join rules have a
    level pair to roll up.
    """

    name: str = "workload"
    seed: int = 0
    facts: int = 10_000
    levels: int = 3
    skew: float = 1.0
    violation_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.facts < 1:
            raise ValueError(f"facts must be >= 1, got {self.facts}")
        if self.levels < 2:
            raise ValueError(f"levels must be >= 2, got {self.levels}")
        if self.skew < 0:
            raise ValueError(f"skew must be >= 0, got {self.skew}")
        if not 0.0 <= self.violation_rate <= 1.0:
            raise ValueError(
                f"violation_rate must be in [0, 1], "
                f"got {self.violation_rate}"
            )


def level_sizes(spec: WorkloadSpec) -> tuple[int, ...]:
    """Base rows per level: shares ``∝ 1/(k+1)^skew``, floor 1, with
    the rounding remainder going to level 0 (the fact table)."""
    weights = [1.0 / (k + 1) ** spec.skew for k in range(spec.levels)]
    total = sum(weights)
    sizes = [
        max(1, int(spec.facts * weight / total)) for weight in weights
    ]
    sizes[0] += spec.facts - sum(sizes)
    if sizes[0] < 1:
        # Tiny fact budgets: give every level its floor of one row.
        sizes[0] = 1
    return tuple(sizes)


def schema_of(spec: WorkloadSpec) -> Schema:
    """``L0..L{levels-1}`` (the layered FK relations) plus
    ``A0..A{levels-2}`` (the rollup targets of the join rules)."""
    relations = [Relation(f"L{k}", 2) for k in range(spec.levels)]
    relations += [Relation(f"A{k}", 2) for k in range(spec.levels - 1)]
    return Schema(relations)


def _parent_pool(spec: WorkloadSpec, level: int, sizes: tuple[int, ...]) -> int:
    """How many keys a level-``level`` row can reference.

    Inner levels reference the next level's child keys (one per row);
    the top level references a small root pool.
    """
    if level + 1 < spec.levels:
        return sizes[level + 1]
    return max(2, sizes[level] // _KEY_DIVISOR)


def generate_rows(spec: WorkloadSpec) -> Iterator[Row]:
    """The spec's fact stream, lazily: ``Lk(n{k}_{i}, parent)`` rows in
    level order, with violation rows (a second parent for the same
    child) interleaved right after the row they corrupt."""
    sizes = level_sizes(spec)
    rng = Random(spec.seed)
    for level in range(spec.levels):
        relation = Relation(f"L{level}", 2)
        pool = _parent_pool(spec, level, sizes)
        table = _zipf_cdf(pool, spec.skew)
        parent_name = (
            f"n{level + 1}_" if level + 1 < spec.levels else "root_"
        )
        for i in range(sizes[level]):
            child = Const(f"n{level}_{i}")
            parent = _zipf_draw(rng, table)
            yield (relation, (child, Const(f"{parent_name}{parent}")))
            if rng.random() < spec.violation_rate:
                other = (parent + 1) % pool
                yield (
                    relation,
                    (child, Const(f"{parent_name}{other}")),
                )


def dependencies_of(spec: WorkloadSpec) -> list[TGD]:
    """The rollup join rules: ``Lk(x, y), Lk+1(y, z) -> Ak(x, z)``.

    Full tgds (no existentials), non-recursive: the chase reaches the
    unique least fixpoint in two rounds regardless of strategy,
    chunking or backend — the bit-identity anchor for every
    streaming/bounded-memory differential.
    """
    schema = schema_of(spec)
    text = "\n".join(
        f"L{k}(x, y), L{k + 1}(y, z) -> A{k}(x, z)"
        for k in range(spec.levels - 1)
    )
    return list(parse_tgds(text, schema))


def constraints_of(spec: WorkloadSpec) -> list[EGD]:
    """Per-level key FDs: ``Lk(x, y), Lk(x, z) -> y = z``.

    Injected violations bind ``y``/``z`` to two distinct *constants*,
    so a chase carrying these egds fails hard
    (``StopReason.EGD_FAILURE``) instead of repairing by null merge.
    """
    egds = []
    for k in range(spec.levels):
        dep = parse_dependency(f"L{k}(x, y), L{k}(x, z) -> y = z")
        assert isinstance(dep, EGD)
        egds.append(dep)
    return egds


def write_workload(
    spec: WorkloadSpec,
    path: str | Path,
    *,
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> int:
    """Stream the spec's facts to ``path`` (fact-stream v1); returns
    the number of rows written.  Peak memory is one writer batch —
    independent of ``spec.facts``."""
    schema = schema_of(spec)
    with FactStreamWriter(path, schema, batch_size=batch_size) as writer:
        for relation, elements in generate_rows(spec):
            writer.write(relation, elements)
        return writer.rows_written


def materialize(
    spec: WorkloadSpec,
    *,
    backend: str = DEFAULT_BACKEND,
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> Instance:
    """The spec's instance via the streaming ingestion path (no disk
    round-trip): generator → batched ingest → instance."""
    return Instance.from_stream(
        generate_rows(spec),
        schema=schema_of(spec),
        backend=backend,
        batch_size=batch_size,
    )
