"""Random instance generators (seeded, reproducible)."""

from __future__ import annotations

import itertools
import random

from ..instances.instance import Instance
from ..lang.schema import Schema
from ..lang.terms import Const

__all__ = ["random_instance", "random_model"]


def random_instance(
    rng: random.Random,
    schema: Schema,
    domain_size: int,
    density: float = 0.3,
) -> Instance:
    """Each possible tuple is a fact independently with prob ``density``."""
    domain = [Const(f"a{i}") for i in range(domain_size)]
    relations = {}
    for rel in schema:
        tuples = set()
        for tup in itertools.product(domain, repeat=rel.arity):
            if rng.random() < density:
                tuples.add(tup)
        relations[rel] = tuples
    return Instance(schema, domain, relations)


def random_model(
    rng: random.Random,
    schema: Schema,
    dependencies,
    domain_size: int,
    density: float = 0.3,
    *,
    attempts: int = 200,
) -> Instance | None:
    """A random instance satisfying the dependencies, by rejection
    sampling plus a chase completion; ``None`` if nothing materialized
    within the budget."""
    from ..chase.engine import chase

    for __ in range(attempts):
        candidate = random_instance(rng, schema, domain_size, density)
        result = chase(candidate, dependencies, max_rounds=8)
        if result.successful:
            return result.instance
    return None
