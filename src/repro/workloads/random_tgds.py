"""Random dependency generators (seeded, reproducible).

Used by the property-based tests (Lemmas 3.2/3.4/3.6 hold for *every*
tgd set, so we validate them on random ones) and by the benchmark sweeps.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..dependencies.classes import TGDClass
from ..dependencies.tgd import TGD
from ..lang.atoms import Atom
from ..lang.schema import Relation, Schema
from ..lang.terms import Var

__all__ = ["random_schema", "random_tgd", "random_tgd_set"]


def random_schema(
    rng: random.Random,
    relations: int = 3,
    max_arity: int = 2,
    *,
    min_arity: int = 1,
) -> Schema:
    """A schema ``R0/a0, ..., R{k-1}/a{k-1}`` with random arities."""
    return Schema(
        Relation(f"R{i}", rng.randint(min_arity, max_arity))
        for i in range(relations)
    )


def _random_atom(
    rng: random.Random, schema: Schema, variables: Sequence[Var]
) -> Atom:
    rel = rng.choice(list(schema))
    return Atom(rel, tuple(rng.choice(list(variables)) for __ in range(rel.arity)))


def _guard_atom(
    rng: random.Random, schema: Schema, variables: Sequence[Var]
) -> Atom | None:
    """An atom containing *all* the given variables, if some relation is
    wide enough."""
    wide = [rel for rel in schema if rel.arity >= len(variables)]
    if not wide:
        return None
    rel = rng.choice(wide)
    args = list(variables)
    while len(args) < rel.arity:
        args.append(rng.choice(list(variables)))
    rng.shuffle(args)
    return Atom(rel, tuple(args))


def random_tgd(
    rng: random.Random,
    schema: Schema,
    *,
    cls: TGDClass = TGDClass.TGD,
    body_atoms: int = 2,
    head_atoms: int = 1,
    body_variables: int = 3,
    existential_variables: int = 1,
) -> TGD:
    """A random tgd in the requested class.

    Retries internally until the class constraint is met; raises if the
    schema cannot support it (e.g. guards need a relation of arity ≥
    the body variable count).
    """
    for __ in range(200):
        n_vars = max(1, rng.randint(1, body_variables))
        pool = [Var(f"x{i}") for i in range(n_vars)]
        if cls is TGDClass.LINEAR:
            body = [_random_atom(rng, schema, pool)]
        elif cls is TGDClass.GUARDED:
            used = pool[: rng.randint(1, n_vars)]
            guard = _guard_atom(rng, schema, used)
            if guard is None:
                continue
            pool = used
            body = [guard] + [
                _random_atom(rng, schema, pool)
                for __ in range(rng.randint(0, max(0, body_atoms - 1)))
            ]
        else:
            body = [
                _random_atom(rng, schema, pool)
                for __ in range(max(1, rng.randint(1, body_atoms)))
            ]
        body_vars = sorted(
            {v for atom in body for v in atom.variables()},
            key=lambda v: v.name,
        )
        if not body_vars:
            continue
        m = (
            0
            if cls is TGDClass.FULL
            else rng.randint(0, existential_variables)
        )
        existentials = [Var(f"z{i}") for i in range(m)]
        frontier_budget = rng.randint(0, len(body_vars))
        frontier = body_vars[:frontier_budget] if frontier_budget else []
        head_pool = list(frontier) + existentials
        if not head_pool:
            head_pool = body_vars[:1]
        head = [
            _random_atom(rng, schema, head_pool)
            for __ in range(max(1, rng.randint(1, head_atoms)))
        ]
        try:
            tgd = TGD(tuple(body), tuple(head))
        except Exception:
            continue
        if cls is TGDClass.FULL and not tgd.is_full:
            continue
        if cls is TGDClass.LINEAR and not tgd.is_linear:
            continue
        if cls is TGDClass.GUARDED and not tgd.is_guarded:
            continue
        if (
            cls is TGDClass.FRONTIER_GUARDED
            and not tgd.is_frontier_guarded
        ):
            continue
        return tgd
    raise ValueError(
        f"could not generate a {cls} tgd over {schema} with the given shape"
    )


def random_tgd_set(
    rng: random.Random,
    schema: Schema,
    count: int,
    *,
    cls: TGDClass = TGDClass.TGD,
    **shape,
) -> tuple[TGD, ...]:
    return tuple(
        random_tgd(rng, schema, cls=cls, **shape) for __ in range(count)
    )
