"""Workload generators and curated scenarios."""

from .factory import (
    WorkloadSpec,
    clear_workload_caches,
    constraints_of,
    dependencies_of,
    generate_rows,
    level_sizes,
    materialize,
    schema_of,
    write_workload,
)
from .random_instances import random_instance, random_model
from .random_tgds import random_schema, random_tgd, random_tgd_set
from .scenarios import (
    Scenario,
    all_scenarios,
    company_guarded,
    example_5_2,
    family_frontier_guarded,
    library_weakly_acyclic,
    social_non_terminating,
    triangle_full,
    university_linear,
)

__all__ = [
    "WorkloadSpec", "clear_workload_caches", "constraints_of",
    "dependencies_of", "generate_rows", "level_sizes", "materialize",
    "schema_of", "write_workload",
    "random_instance", "random_model",
    "random_schema", "random_tgd", "random_tgd_set",
    "Scenario", "all_scenarios", "company_guarded", "example_5_2",
    "family_frontier_guarded", "library_weakly_acyclic",
    "social_non_terminating", "triangle_full", "university_linear",
]
