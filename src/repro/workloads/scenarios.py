"""Curated ontology scenarios.

These are the realistic workloads the examples and benchmarks run on:
small versions of the ontology-mediated-query-answering settings the
paper's introduction motivates (Datalog±/existential-rule style), one per
syntactic class, plus the paper's own Example 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dependencies.tgd import TGD
from ..instances.instance import Instance
from ..lang.parser import parse_tgds
from ..lang.schema import Schema

__all__ = [
    "Scenario",
    "university_linear",
    "company_guarded",
    "family_frontier_guarded",
    "triangle_full",
    "example_5_2",
    "library_weakly_acyclic",
    "social_non_terminating",
    "all_scenarios",
]


@dataclass(frozen=True)
class Scenario:
    """A named dependency set with a sample database."""

    name: str
    description: str
    schema: Schema
    tgds: tuple[TGD, ...]
    sample: Instance


def university_linear() -> Scenario:
    """A linear (hence guarded) ontology: course enrollment typing."""
    schema = Schema.of(
        ("Enrolled", 2),
        ("Teaches", 2),
        ("Student", 1),
        ("Course", 1),
        ("Lecturer", 1),
        ("HasTutor", 2),
    )
    tgds = parse_tgds(
        """
        Enrolled(s, c) -> Student(s)
        Enrolled(s, c) -> Course(c)
        Teaches(l, c) -> Lecturer(l)
        Teaches(l, c) -> Course(c)
        Student(s) -> exists t . HasTutor(s, t)
        HasTutor(s, t) -> Lecturer(t)
        """,
        schema,
    )
    sample = Instance.parse(
        "Enrolled(ada, logic). Enrolled(bob, logic). Teaches(tarski, logic)",
        schema,
    )
    return Scenario(
        "university-linear",
        "course enrollment with tutor invention (linear tgds)",
        schema,
        tgds,
        sample,
    )


def company_guarded() -> Scenario:
    """A guarded (non-linear) ontology: managers inside projects."""
    schema = Schema.of(
        ("WorksOn", 2),
        ("Manages", 2),
        ("Employee", 1),
        ("Project", 1),
        ("Supervised", 2),
    )
    tgds = parse_tgds(
        """
        WorksOn(e, p) -> Employee(e)
        WorksOn(e, p) -> Project(p)
        Manages(m, p), WorksOn(m, p) -> exists e . Supervised(e, m)
        Supervised(e, m) -> Employee(m)
        """,
        schema,
    )
    sample = Instance.parse(
        "WorksOn(ann, apollo). Manages(ann, apollo). WorksOn(ben, apollo)",
        schema,
    )
    return Scenario(
        "company-guarded",
        "project management with guarded joins",
        schema,
        tgds,
        sample,
    )


def family_frontier_guarded() -> Scenario:
    """A frontier-guarded ontology with a non-guarded body."""
    schema = Schema.of(
        ("Parent", 2),
        ("Person", 1),
        ("Ancestor", 2),
        ("Named", 1),
    )
    tgds = parse_tgds(
        """
        Parent(x, y) -> Person(x)
        Parent(x, y) -> Person(y)
        Person(x) -> exists p . Parent(p, x)
        Parent(x, y), Person(z) -> Ancestor(x, y)
        Ancestor(x, y) -> Named(x)
        """,
        schema,
    )
    sample = Instance.parse("Parent(eve, cain). Person(abel)", schema)
    return Scenario(
        "family-frontier-guarded",
        "genealogy with a frontier-guarded (non-guarded) rule",
        schema,
        tgds,
        sample,
    )


def triangle_full() -> Scenario:
    """A full-tgd ontology: transitive-style composition."""
    schema = Schema.of(("R", 2), ("S", 2), ("T", 2))
    tgds = parse_tgds(
        """
        R(x, y), S(y, z) -> T(x, z)
        T(x, y) -> R(x, y)
        """,
        schema,
    )
    sample = Instance.parse("R(a, b). S(b, c)", schema)
    return Scenario(
        "triangle-full",
        "relational composition (full tgds)",
        schema,
        tgds,
        sample,
    )


def example_5_2() -> Scenario:
    """Example 5.2 of the paper: σ = R(x,y), S(y,z) → T(x,z) with the
    instance I = {R(a,b), S(b,a), T(a,a)}; the Makowsky–Vardi duplicating
    extension of I violates σ."""
    schema = Schema.of(("R", 2), ("S", 2), ("T", 2))
    tgds = parse_tgds("R(x, y), S(y, z) -> T(x, z)", schema)
    sample = Instance.parse("R(a, b). S(b, a). T(a, a)", schema)
    return Scenario(
        "example-5.2",
        "the paper's counterexample to Makowsky–Vardi Lemma 7",
        schema,
        tgds,
        sample,
    )


def library_weakly_acyclic() -> Scenario:
    """A weakly acyclic set mixing invention with full closure rules."""
    schema = Schema.of(
        ("Holds", 2),       # Holds(member, book)
        ("Member", 1),
        ("Book", 1),
        ("HasCard", 2),     # HasCard(member, card)
        ("Card", 1),
    )
    tgds = parse_tgds(
        """
        Holds(m, b) -> Member(m)
        Holds(m, b) -> Book(b)
        Member(m) -> exists c . HasCard(m, c)
        HasCard(m, c) -> Card(c)
        """,
        schema,
    )
    sample = Instance.parse(
        "Holds(ines, odyssey). Holds(juno, iliad)", schema
    )
    return Scenario(
        "library-weakly-acyclic",
        "lending records with card invention (weakly acyclic)",
        schema,
        tgds,
        sample,
    )


def social_non_terminating() -> Scenario:
    """A linear set whose chase never terminates (everyone needs a
    follower with their own follower, ...)."""
    schema = Schema.of(("Follows", 2), ("Active", 1))
    tgds = parse_tgds(
        """
        Active(x) -> exists f . Follows(f, x)
        Follows(f, x) -> Active(f)
        """,
        schema,
    )
    sample = Instance.parse("Active(zero)", schema)
    return Scenario(
        "social-non-terminating",
        "follower invention (linear, chase diverges; rewriting still works)",
        schema,
        tgds,
        sample,
    )


def all_scenarios() -> tuple[Scenario, ...]:
    return (
        university_linear(),
        company_guarded(),
        family_frontier_guarded(),
        triangle_full(),
        example_5_2(),
        library_weakly_acyclic(),
        social_non_terminating(),
    )
