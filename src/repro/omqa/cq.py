"""Conjunctive queries with answer variables.

The paper motivates tgds through *ontology-mediated query answering*
(OMQA): evaluating a query over a database together with an ontology,
under certain-answer semantics.  This module provides the query side:
CQs with distinguished answer variables, evaluation over instances, and
chase-based certain answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from ..chase.engine import chase
from ..analysis.certificates import default_budget
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..homomorphisms.search import all_extensions_of
from ..instances.instance import Instance
from ..lang.atoms import Atom, atoms_variables
from ..lang.parser import parse_atoms
from ..lang.schema import Schema
from ..lang.terms import Const, Null, Var

__all__ = ["CQ", "UCQ", "certain_answers"]


@dataclass(frozen=True)
class CQ:
    """``q(x̄) :- a1, ..., ak`` — a conjunctive query.

    ``answer`` lists the distinguished (free) variables, in order; all
    other variables are existential.  Constants are allowed in atoms.
    """

    atoms: tuple[Atom, ...]
    answer: tuple[Var, ...]

    def __init__(self, atoms: Iterable[Atom], answer: Iterable[Var] = ()):
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "answer", tuple(answer))
        if not self.atoms:
            raise ValueError("a CQ needs at least one atom")
        variables = set(atoms_variables(self.atoms))
        for var in self.answer:
            if var not in variables:
                raise ValueError(
                    f"answer variable {var} does not occur in the query"
                )

    @classmethod
    def parse(
        cls, text: str, schema: Schema | None = None
    ) -> "CQ":
        """Parse ``"x, y <- R(x, z), S(z, y)"`` (or just a conjunction
        for a Boolean query)."""
        head_text, sep, body_text = text.partition("<-")
        if not sep:
            body_text, head_text = text, ""
        atoms = parse_atoms(body_text, schema)
        answer = tuple(
            Var(name.strip())
            for name in head_text.split(",")
            if name.strip()
        )
        return cls(atoms, answer)

    @property
    def is_boolean(self) -> bool:
        return not self.answer

    @property
    def schema(self) -> Schema:
        return Schema(atom.relation for atom in self.atoms)

    def variables(self) -> tuple[Var, ...]:
        return atoms_variables(self.atoms)

    def existential_variables(self) -> tuple[Var, ...]:
        answer = set(self.answer)
        return tuple(v for v in self.variables() if v not in answer)

    def evaluate(self, instance: Instance) -> set[tuple]:
        """All answer tuples over the instance (a single empty tuple for
        a satisfied Boolean query)."""
        target = instance
        if not self.schema <= instance.schema:
            target = instance.with_schema(instance.schema.union(self.schema))
        results = set()
        for assignment in all_extensions_of(self.atoms, target):
            results.add(tuple(assignment[v] for v in self.answer))
        return results

    def holds_in(self, instance: Instance) -> bool:
        return bool(self.evaluate(instance))

    def substitute(self, mapping) -> "CQ":
        """Apply a variable substitution (answer variables must stay
        variables)."""
        new_answer = []
        for var in self.answer:
            image = mapping.get(var, var)
            if not isinstance(image, Var):
                raise ValueError(
                    f"answer variable {var} mapped to non-variable {image}"
                )
            new_answer.append(image)
        return CQ(
            tuple(a.substitute(mapping) for a in self.atoms),
            tuple(new_answer),
        )

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.answer)
        body = ", ".join(str(a) for a in self.atoms)
        return f"{head} <- {body}".replace("?", "") if head else body.replace("?", "")

    def __repr__(self) -> str:
        return f"CQ<{self}>"


@dataclass(frozen=True)
class UCQ:
    """A union of CQs with the same answer arity."""

    disjuncts: tuple[CQ, ...]

    def __init__(self, disjuncts: Iterable[CQ]):
        object.__setattr__(self, "disjuncts", tuple(disjuncts))
        if not self.disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        arities = {len(q.answer) for q in self.disjuncts}
        if len(arities) != 1:
            raise ValueError("all UCQ disjuncts must share the answer arity")

    def evaluate(self, instance: Instance) -> set[tuple]:
        results: set[tuple] = set()
        for disjunct in self.disjuncts:
            results |= disjunct.evaluate(instance)
        return results

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[CQ]:
        return iter(self.disjuncts)

    def __str__(self) -> str:
        return "  ∪  ".join(str(q) for q in self.disjuncts)


def certain_answers(
    database: Instance,
    dependencies: Sequence[Union[TGD, EGD]],
    query: CQ,
    *,
    max_rounds: int | None = None,
    backend: str | None = None,
    order: str | None = None,
) -> set[tuple]:
    """Certain answers of ``query`` over ``database`` and the ontology.

    Computed by chasing and keeping the *null-free* answers (a certain
    answer may not mention invented values).  Complete when the chase
    terminates; sound always.  A failing chase (egd clash) makes every
    tuple over the active domain certain; we surface that as the answers
    over the database itself, which is the standard convention for
    inconsistent exchange settings is out of scope — we raise instead.

    ``backend`` and ``order`` select the chase's storage representation
    and join-ordering strategy (``None`` → the chase defaults); the
    answer set is invariant in both.
    """
    budget = max_rounds
    if budget is None:
        budget = default_budget(dependencies, 12)
    if backend is None:
        result = chase(database, dependencies, max_rounds=budget, order=order)
    else:
        result = chase(
            database, dependencies, max_rounds=budget, backend=backend,
            order=order,
        )
    if result.failed:
        raise ValueError(
            "the chase failed (egd clash): certain answers are trivial"
        )
    answers = query.evaluate(result.instance)
    return {
        tup
        for tup in answers
        if not any(isinstance(elem, Null) for elem in tup)
    }
