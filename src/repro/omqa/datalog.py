"""Semi-naive Datalog evaluation for full tgds.

A finite set of full tgds is a Datalog program (no value invention), so
materialization does not need the chase's trigger/rewrite machinery:
bottom-up *semi-naive* evaluation — each round only joins against the
facts that are new since the previous round — reaches the same least
fixpoint with far fewer redundant matches.

``seminaive_chase`` returns the same instance the restricted chase
produces on full tgds (benchmarks/bench_datalog.py measures the gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..dependencies.tgd import TGD
from ..instances.instance import Instance
from ..lang.atoms import Atom
from ..lang.schema import Relation, Schema
from ..lang.terms import Const, Var

__all__ = ["SeminaiveResult", "seminaive_chase"]


@dataclass(frozen=True)
class SeminaiveResult:
    """The fixpoint and per-round statistics."""

    instance: Instance
    rounds: int
    derived_facts: int


def _check_full(tgds: Sequence[TGD]) -> None:
    for tgd in tgds:
        if not tgd.is_full:
            raise ValueError(
                f"semi-naive evaluation needs full tgds, got: {tgd}"
            )
        if not tgd.body:
            raise ValueError(
                f"semi-naive evaluation needs non-empty bodies: {tgd}"
            )


def _match_atom(
    atom: Atom,
    tuples: Iterable[tuple],
    binding: Mapping[Var, object],
) -> Iterable[dict[Var, object]]:
    for tup in tuples:
        extended = dict(binding)
        ok = True
        for arg, elem in zip(atom.args, tup):
            if isinstance(arg, Const):
                if arg != elem:
                    ok = False
                    break
            else:
                bound = extended.get(arg)
                if bound is None:
                    extended[arg] = elem
                elif bound != elem:
                    ok = False
                    break
        if ok:
            yield extended


def _join(
    atoms: Sequence[Atom],
    store: Mapping[Relation, set[tuple]],
    delta: Mapping[Relation, set[tuple]],
    delta_position: int,
) -> Iterable[dict[Var, object]]:
    """All body matches where the atom at ``delta_position`` matches a
    *new* fact and earlier atoms match the full store.

    Atoms after the delta position also read the full store (the standard
    semi-naive rewriting ``Δ ⋈ full`` per position avoids duplicates only
    up to commutativity; correctness needs full visibility either side).
    """
    bindings: list[dict[Var, object]] = [{}]
    for index, atom in enumerate(atoms):
        source = (
            delta.get(atom.relation, set())
            if index == delta_position
            else store.get(atom.relation, set())
        )
        bindings = [
            extended
            for binding in bindings
            for extended in _match_atom(atom, source, binding)
        ]
        if not bindings:
            return []
    return bindings


def seminaive_chase(
    instance: Instance,
    tgds: Sequence[TGD],
    *,
    max_rounds: int | None = None,
) -> SeminaiveResult:
    """Materialize the least model of the full-tgd program.

    Always terminates (no invention); ``max_rounds`` exists for
    symmetry with :func:`repro.chase.chase` and is never the limiting
    factor on full programs of bounded derivation depth.
    """
    tgds = list(tgds)
    _check_full(tgds)
    schema = Schema.combined(
        (instance.schema, *(tgd.schema for tgd in tgds))
    )

    store: dict[Relation, set[tuple]] = {
        rel: set(
            instance.tuples(rel.name) if rel.name in instance.schema else ()
        )
        for rel in schema
    }
    delta: dict[Relation, set[tuple]] = {
        rel: set(tuples) for rel, tuples in store.items()
    }
    rounds = 0
    derived = 0
    while any(delta.values()):
        if max_rounds is not None and rounds >= max_rounds:
            break
        rounds += 1
        fresh: dict[Relation, set[tuple]] = {rel: set() for rel in schema}
        for tgd in tgds:
            for position in range(len(tgd.body)):
                for binding in _join(tgd.body, store, delta, position):
                    for atom in tgd.head:
                        tup = tuple(
                            binding[arg] if isinstance(arg, Var) else arg
                            for arg in atom.args
                        )
                        if tup not in store[atom.relation]:
                            fresh[atom.relation].add(tup)
        for rel, tuples in fresh.items():
            store[rel].update(tuples)
            derived += len(tuples)
        delta = fresh

    domain = set(instance.domain)
    for tuples in store.values():
        for tup in tuples:
            domain.update(tup)
    return SeminaiveResult(
        instance=Instance(schema, domain, store),
        rounds=rounds,
        derived_facts=derived,
    )
