"""Ontology-mediated query answering: CQs, certain answers, and UCQ
rewriting for linear tgds."""

from .cq import CQ, UCQ, certain_answers
from .datalog import SeminaiveResult, seminaive_chase
from .rewriting import RewritingResult, rewrite_ucq, subsumes

__all__ = [
    "CQ", "UCQ", "certain_answers",
    "SeminaiveResult", "seminaive_chase",
    "RewritingResult", "rewrite_ucq", "subsumes",
]
