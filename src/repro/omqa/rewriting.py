"""UCQ rewriting for linear tgds (first-order rewritability).

Linear tgds are a *finite unification set*: every CQ can be rewritten
into a finite union of CQs whose plain evaluation over the database
computes the certain answers (Calì–Gottlob–Lukasiewicz; Baget et al.).
This module implements the classic piece-rewriting procedure restricted
to linear rules:

* a *piece* is a subset ``P`` of query atoms unified with head atoms of
  a rule such that every query variable glued to an existential variable
  of the rule is non-answer and occurs only inside ``P``;
* a rewriting step replaces ``P`` by the (single) body atom of the rule
  under the unifier;
* the procedure saturates under homomorphism subsumption.

The result evaluates over the raw database — no chase needed — which is
the OMQA deployment mode the paper's introduction motivates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..dependencies.tgd import TGD
from ..homomorphisms.search import find_extension
from ..instances.instance import Instance
from ..lang.atoms import Atom
from ..lang.schema import Schema
from ..lang.terms import Const, Term, Var
from .cq import CQ, UCQ

__all__ = ["RewritingResult", "rewrite_ucq", "subsumes"]


@dataclass(frozen=True)
class RewritingResult:
    """The saturated UCQ plus bookkeeping.

    ``complete`` is False only when a safety cap stopped saturation; in
    that case the UCQ is still sound (every disjunct's answers are
    certain answers) but may miss some.
    """

    ucq: UCQ
    complete: bool
    generated: int
    subsumed: int


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent is term or parent == term:
            return parent
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, left: Term, right: Term) -> None:
        self._parent[self.find(left)] = self.find(right)

    def classes(self) -> dict[Term, set[Term]]:
        groups: dict[Term, set[Term]] = {}
        for term in list(self._parent):
            groups.setdefault(self.find(term), set()).add(term)
        return groups


def _unify_piece(
    piece: Sequence[Atom], images: Sequence[Atom]
) -> _UnionFind | None:
    """Most general unifier of the aligned atom pairs, or ``None``."""
    uf = _UnionFind()
    for query_atom, head_atom in zip(piece, images):
        if query_atom.relation != head_atom.relation:
            return None
        for qarg, harg in zip(query_atom.args, head_atom.args):
            uf.union(qarg, harg)
    # a class with two distinct constants is inconsistent
    for members in uf.classes().values():
        constants = {m for m in members if isinstance(m, Const)}
        if len(constants) > 1:
            return None
    return uf


def _piece_admissible(
    uf: _UnionFind,
    query: CQ,
    piece: set[Atom],
    existentials: set[Var],
    rule_vars: set[Var],
) -> bool:
    """The piece condition: classes containing a rule existential must
    consist of that existential plus query variables that are non-answer
    and do not occur outside the piece."""
    outside_vars = {
        var
        for atom in query.atoms
        if atom not in piece
        for var in atom.variables()
    }
    answer = set(query.answer)
    for members in uf.classes().values():
        exist_members = {m for m in members if m in existentials}
        if not exist_members:
            continue
        if len(exist_members) > 1:
            return False  # two distinct inventions cannot be equal
        for member in members:
            if member in exist_members:
                continue
            if isinstance(member, Const):
                return False
            if member in rule_vars:
                return False  # a universally quantified value is not invented
            if member in answer or member in outside_vars:
                return False
    return True


def _representatives(
    uf: _UnionFind, existentials: set[Var], answer: set[Var]
) -> Mapping[Term, Term] | None:
    """Pick one representative per class: constants win; otherwise an
    answer variable if present; otherwise any variable.  Returns ``None``
    when an answer variable would be forced to a constant (a rewriting
    shape outside plain CQs — skipped, see module docstring)."""
    mapping: dict[Term, Term] = {}
    for members in uf.classes().values():
        constants = [m for m in members if isinstance(m, Const)]
        if constants and members & answer:
            return None
        if constants:
            representative: Term = constants[0]
        else:
            answer_members = sorted(
                (m for m in members if m in answer), key=str
            )
            if answer_members:
                representative = answer_members[0]
            else:
                non_exist = sorted(
                    (m for m in members if m not in existentials), key=str
                )
                representative = (
                    non_exist[0] if non_exist else sorted(members, key=str)[0]
                )
        for member in members:
            mapping[member] = representative
    return mapping


def _apply(atom: Atom, mapping: Mapping[Term, Term]) -> Atom:
    return Atom(
        atom.relation,
        tuple(mapping.get(arg, arg) for arg in atom.args),
    )


def _one_step_rewritings(query: CQ, tgd: TGD) -> Iterator[CQ]:
    """All piece-rewritings of the query with one linear tgd."""
    rule = tgd.rename_apart(query.variables(), prefix="r")
    head = rule.head
    existentials = set(rule.existential_variables)
    rule_vars = set(rule.universal_variables)
    answer = set(query.answer)
    for size in range(1, len(query.atoms) + 1):
        for piece in itertools.combinations(query.atoms, size):
            piece_set = set(piece)
            head_choices = [
                [h for h in head if h.relation == atom.relation]
                for atom in piece
            ]
            if any(not choice for choice in head_choices):
                continue
            for images in itertools.product(*head_choices):
                # several query atoms may collapse onto one head atom
                uf = _unify_piece(piece, images)
                if uf is None:
                    continue
                if not _piece_admissible(
                    uf, query, piece_set, existentials, rule_vars
                ):
                    continue
                mapping = _representatives(uf, existentials, answer)
                if mapping is None:
                    continue
                new_atoms = [_apply(atom, mapping) for atom in rule.body]
                new_atoms.extend(
                    _apply(atom, mapping)
                    for atom in query.atoms
                    if atom not in piece_set
                )
                # dedup atoms, keep order
                seen: set[Atom] = set()
                unique = []
                for atom in new_atoms:
                    if atom not in seen:
                        seen.add(atom)
                        unique.append(atom)
                new_answer = tuple(
                    mapping.get(v, v) for v in query.answer
                )
                if not unique:
                    continue
                try:
                    yield CQ(tuple(unique), new_answer)
                except ValueError:
                    continue


def subsumes(general: CQ, specific: CQ) -> bool:
    """``general`` subsumes ``specific``: a homomorphism from the general
    query's atoms into the (frozen) specific query preserving answers —
    then the specific disjunct is redundant in a union."""
    if len(general.answer) != len(specific.answer):
        return False
    freeze = {
        var: Const(f"@q_{var.name}") for var in specific.variables()
    }
    schema = Schema(
        atom.relation
        for atom in (*general.atoms, *specific.atoms)
    )
    database = Instance.from_facts(
        schema, [atom.to_fact(freeze) for atom in specific.atoms]
    )
    partial = {}
    for gen_var, spec_var in zip(general.answer, specific.answer):
        partial[gen_var] = freeze[spec_var]
    return find_extension(general.atoms, database, partial) is not None


def rewrite_ucq(
    query: CQ,
    tgds: Sequence[TGD],
    *,
    max_queries: int = 500,
    max_depth: int = 25,
) -> RewritingResult:
    """Saturate the query under piece-rewriting with linear tgds.

    Raises for non-linear rules (the guarantee of finiteness is a
    linear-tgd property; guarded rules are not FO-rewritable in
    general).
    """
    for tgd in tgds:
        if not tgd.is_linear:
            raise ValueError(f"rewrite_ucq needs linear tgds, got: {tgd}")
    kept: list[CQ] = [query]
    frontier: list[tuple[CQ, int]] = [(query, 0)]
    generated = 0
    dropped = 0
    complete = True
    while frontier:
        current, depth = frontier.pop()
        if depth >= max_depth:
            complete = False
            continue
        for tgd in tgds:
            for candidate in _one_step_rewritings(current, tgd):
                generated += 1
                if len(kept) >= max_queries:
                    complete = False
                    break
                if any(subsumes(old, candidate) for old in kept):
                    dropped += 1
                    continue
                kept = [q for q in kept if not subsumes(candidate, q)]
                kept.append(candidate)
                frontier.append((candidate, depth + 1))
    return RewritingResult(
        ucq=UCQ(tuple(kept)),
        complete=complete,
        generated=generated,
        subsumed=dropped,
    )
