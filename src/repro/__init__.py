"""repro — Model-theoretic Characterizations of Rule-based Ontologies.

A from-scratch reproduction of Console, Kolaitis & Pieris (PODS 2021):
tuple-generating dependencies and their central subclasses (full, linear,
guarded, frontier-guarded), the chase, entailment, the paper's
model-theoretic properties (criticality, ⊗-closure, the novel (n, m)-
locality and its refinements), the constructive axiomatization theorems,
and the rewriting Algorithms 1 (`G-to-L`) and 2 (`FG-to-G`).

Quickstart::

    from repro import Schema, Instance, parse_tgds, chase

    schema = Schema.of(("Enrolled", 2), ("Student", 1))
    rules = parse_tgds("Enrolled(s, c) -> Student(s)", schema)
    db = Instance.parse("Enrolled(ada, logic)", schema)
    print(chase(db, rules).instance)

See ``examples/`` for end-to-end walkthroughs and ``DESIGN.md`` for the
paper-to-module map.
"""

from .analysis import (
    Certificate,
    CertificateReport,
    Diagnostic,
    LintReport,
    Severity,
    certificate_for,
    certificate_gating,
    is_jointly_acyclic,
    is_super_weakly_acyclic,
    run_lint,
    set_certificate_gating,
)
from .chase import ChaseResult, StopReason, chase, is_weakly_acyclic
from .dependencies import (
    EDD,
    EGD,
    TGD,
    DenialConstraint,
    DependencyError,
    EqualityDisjunct,
    ExistentialDisjunct,
    TGDClass,
    canonicalize,
    classify,
    enumerate_guarded_tgds,
    enumerate_linear_tgds,
    enumerate_tgds,
    set_width,
)
from .entailment import BCQ, TriBool, certain_answer, entails, equivalent
from .homomorphisms import are_isomorphic, find_homomorphism
from .instances import (
    Instance,
    critical_instance,
    direct_product,
    disjoint_union,
    intersection,
    non_oblivious_duplicating_extension,
    oblivious_duplicating_extension,
    union,
)
from .lang import (
    Atom,
    Const,
    Fact,
    Relation,
    Schema,
    Var,
    parse_dependency,
    parse_tgd,
    parse_tgds,
)
from .ontology import AxiomaticOntology, FiniteOntology, Ontology
from .properties import (
    CharacterizationResult,
    LocalityMode,
    PropertyReport,
    characterize,
    criticality_report,
    locality_report,
    locally_embeddable,
    product_closure_report,
)
from .rewriting import (
    PreflightError,
    RewriteResult,
    frontier_guarded_to_guarded,
    guarded_to_linear,
    rewrite,
)
from .omqa import CQ, UCQ, certain_answers as certain_cq_answers, rewrite_ucq
from .search import (
    CandidateSource,
    SearchBudget,
    SearchOutcome,
    Verdict,
    run_search,
)
from .synthesis import synthesize_full_tgds, synthesize_tgds

__version__ = "1.0.0"

__all__ = [
    "Certificate", "CertificateReport", "Diagnostic", "LintReport", "Severity",
    "certificate_for", "certificate_gating", "is_jointly_acyclic",
    "is_super_weakly_acyclic", "run_lint", "set_certificate_gating",
    "ChaseResult", "StopReason", "chase", "is_weakly_acyclic",
    "EDD", "EGD", "TGD", "DenialConstraint", "DependencyError", "EqualityDisjunct",
    "ExistentialDisjunct", "TGDClass", "canonicalize", "classify",
    "enumerate_guarded_tgds", "enumerate_linear_tgds", "enumerate_tgds",
    "set_width",
    "BCQ", "TriBool", "certain_answer", "entails", "equivalent",
    "are_isomorphic", "find_homomorphism",
    "Instance", "critical_instance", "direct_product", "disjoint_union",
    "intersection", "non_oblivious_duplicating_extension",
    "oblivious_duplicating_extension", "union",
    "Atom", "Const", "Fact", "Relation", "Schema", "Var",
    "parse_dependency", "parse_tgd", "parse_tgds",
    "AxiomaticOntology", "FiniteOntology", "Ontology",
    "CharacterizationResult", "characterize",
    "LocalityMode", "PropertyReport", "criticality_report",
    "locality_report", "locally_embeddable", "product_closure_report",
    "PreflightError", "RewriteResult", "frontier_guarded_to_guarded",
    "guarded_to_linear", "rewrite",
    "CQ", "UCQ", "certain_cq_answers", "rewrite_ucq",
    "CandidateSource", "SearchBudget", "SearchOutcome", "Verdict",
    "run_search",
    "synthesize_full_tgds", "synthesize_tgds",
    "__version__",
]
