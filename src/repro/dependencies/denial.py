"""Denial constraints (the paper's concluding-remarks extension).

A denial constraint (dc) over **S** is ``∀x̄ ¬φ(x̄)`` — equivalently the
rule ``φ(x̄) → ⊥`` — forbidding a pattern outright.  The paper lists
ontologies specified by tgds + egds + denial constraints as its next
target; this module provides the syntax and semantics so the property
checkers can already be exercised on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..homomorphisms.search import all_extensions_of, find_extension
from ..instances.instance import Instance
from ..lang.atoms import Atom, atoms_variables
from ..lang.schema import Schema
from ..lang.terms import Var
from .tgd import DependencyError, _align

__all__ = ["DenialConstraint"]


@dataclass(frozen=True)
class DenialConstraint:
    """An immutable dc ``body → ⊥`` (non-empty, constant-free body)."""

    body: tuple[Atom, ...]

    def __init__(self, body: Iterable[Atom]):
        object.__setattr__(self, "body", tuple(body))
        if not self.body:
            raise DependencyError("a denial constraint needs a body")
        for atom in self.body:
            if atom.constants():
                raise DependencyError(
                    f"denial constraints are constant-free: {atom}"
                )

    @property
    def universal_variables(self) -> tuple[Var, ...]:
        return atoms_variables(self.body)

    @property
    def width(self) -> tuple[int, int]:
        return (len(self.universal_variables), 0)

    @property
    def schema(self) -> Schema:
        return Schema(atom.relation for atom in self.body)

    @property
    def is_linear(self) -> bool:
        return len(self.body) <= 1

    @property
    def is_guarded(self) -> bool:
        required = set(self.universal_variables)
        return any(
            required <= set(atom.variables()) for atom in self.body
        )

    def satisfied_by(self, instance: Instance) -> bool:
        """``I ⊨ ∀x̄ ¬φ(x̄)``: no homomorphism of the body."""
        inst = _align(instance, self.schema)
        return find_extension(self.body, inst) is None

    def violations(self, instance: Instance) -> list[Mapping[Var, object]]:
        inst = _align(instance, self.schema)
        return list(all_extensions_of(self.body, inst))

    def substitute(self, mapping: Mapping[Var, Var]) -> "DenialConstraint":
        return DenialConstraint(
            tuple(a.substitute(mapping) for a in self.body)
        )

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        return f"{body} -> false".replace("?", "")

    def __repr__(self) -> str:
        return f"DC<{self}>"
