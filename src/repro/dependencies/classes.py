"""The tgd class lattice: TGD, FTGD, LTGD, GTGD, FGTGD and their
``(n, m)``-width fragments (Section 2).

``LTGD ⊊ GTGD ⊊ FGTGD`` and ``FGTGD ≠ FTGD``; ``FTGD = ⋃_n TGD_{n,0}``.
"""

from __future__ import annotations

import enum
from typing import Iterable

from .tgd import TGD

__all__ = ["TGDClass", "in_class", "all_in_class", "classify", "set_width"]


class TGDClass(enum.Enum):
    """The syntactic classes of tgds studied by the paper."""

    TGD = "tgd"
    FULL = "full"
    LINEAR = "linear"
    GUARDED = "guarded"
    FRONTIER_GUARDED = "frontier-guarded"

    def __str__(self) -> str:
        return self.value


_PREDICATES = {
    TGDClass.TGD: lambda tgd: True,
    TGDClass.FULL: lambda tgd: tgd.is_full,
    TGDClass.LINEAR: lambda tgd: tgd.is_linear,
    TGDClass.GUARDED: lambda tgd: tgd.is_guarded,
    TGDClass.FRONTIER_GUARDED: lambda tgd: tgd.is_frontier_guarded,
}


def in_class(tgd: TGD, cls: TGDClass) -> bool:
    """Does a single tgd belong to the class?"""
    return _PREDICATES[cls](tgd)


def all_in_class(tgds: Iterable[TGD], cls: TGDClass) -> bool:
    """Does a finite set of tgds belong to the class (every member does)?"""
    return all(in_class(tgd, cls) for tgd in tgds)


def classify(tgd: TGD) -> frozenset[TGDClass]:
    """All classes the tgd belongs to."""
    return frozenset(cls for cls in TGDClass if in_class(tgd, cls))


def set_width(tgds: Iterable[TGD]) -> tuple[int, int]:
    """The least ``(n, m)`` such that the set is in ``TGD_{n,m}``.

    ``n`` is the max number of universally quantified variables over the
    members, ``m`` the max number of existentially quantified ones.
    """
    n = 0
    m = 0
    for tgd in tgds:
        tn, tm = tgd.width
        n = max(n, tn)
        m = max(m, tm)
    return (n, m)
