"""Equality-generating dependencies (egds).

An egd is ``∀x̄ (φ(x̄) → x_i = x_j)`` with a non-empty, constant-free body
and ``x_i, x_j`` body variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..homomorphisms.search import all_extensions_of
from ..instances.instance import Instance
from ..lang.atoms import Atom, atoms_variables
from ..lang.schema import Schema
from ..lang.terms import Var
from .tgd import DependencyError, _align

__all__ = ["EGD"]


@dataclass(frozen=True)
class EGD:
    """An immutable egd ``body → lhs = rhs``."""

    body: tuple[Atom, ...]
    lhs: Var
    rhs: Var

    def __init__(self, body: Iterable[Atom], lhs: Var, rhs: Var):
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)
        if not self.body:
            raise DependencyError("an egd body must be non-empty")
        body_vars = set(atoms_variables(self.body))
        for var in (lhs, rhs):
            if var not in body_vars:
                raise DependencyError(
                    f"egd equality variable {var} must occur in the body"
                )
        for atom in self.body:
            if atom.constants():
                raise DependencyError(f"egds are constant-free: {atom}")

    @property
    def universal_variables(self) -> tuple[Var, ...]:
        return atoms_variables(self.body)

    @property
    def width(self) -> tuple[int, int]:
        return (len(self.universal_variables), 0)

    @property
    def is_trivial(self) -> bool:
        """``... → x = x`` — satisfied by every instance."""
        return self.lhs == self.rhs

    @property
    def schema(self) -> Schema:
        return Schema(atom.relation for atom in self.body)

    def satisfied_by(self, instance: Instance) -> bool:
        if self.is_trivial:
            return True
        inst = _align(instance, self.schema)
        return all(
            trigger[self.lhs] == trigger[self.rhs]
            for trigger in all_extensions_of(self.body, inst)
        )

    def violations(self, instance: Instance) -> list[Mapping[Var, object]]:
        if self.is_trivial:
            return []
        inst = _align(instance, self.schema)
        return [
            trigger
            for trigger in all_extensions_of(self.body, inst)
            if trigger[self.lhs] != trigger[self.rhs]
        ]

    def as_edd(self):
        """The egd viewed as a single-disjunct edd."""
        from .edd import EDD, EqualityDisjunct

        return EDD(self.body, (EqualityDisjunct(self.lhs, self.rhs),))

    def substitute(self, mapping: Mapping[Var, Var]) -> "EGD":
        return EGD(
            tuple(a.substitute(mapping) for a in self.body),
            mapping.get(self.lhs, self.lhs),
            mapping.get(self.rhs, self.rhs),
        )

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        return f"{body} -> {self.lhs} = {self.rhs}".replace("?", "")

    def __repr__(self) -> str:
        return f"EGD<{self}>"
