"""Tuple-generating dependencies (tgds).

A tgd over a schema **S** is a constant-free sentence

    ∀x̄ ∀ȳ ( φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄) )

where φ (the *body*) is a possibly empty conjunction of atoms and ψ (the
*head*) a non-empty one.  The universally quantified variables are exactly
the body variables; the head may use body variables (its *frontier*) and
fresh existential variables.

Width convention (``TGD_{n,m}``): ``n`` bounds the number of universally
quantified variables, ``m`` the number of existentially quantified ones.

The central syntactic subclasses (Section 2):

* **full** — no existential variables;
* **linear** — at most one body atom;
* **guarded** — empty body, or some body atom contains *all* universally
  quantified variables;
* **frontier-guarded** — empty body, or some body atom contains all the
  frontier variables.

``LTGD ⊊ GTGD ⊊ FGTGD`` and ``FGTGD ≠ FTGD``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..instances.instance import Instance
from ..homomorphisms.search import all_extensions_of, satisfies_atoms
from ..lang.atoms import Atom, atoms_variables
from ..lang.schema import Schema
from ..lang.terms import FreshVars, Var

__all__ = ["TGD", "DependencyError"]


class DependencyError(ValueError):
    """Raised for malformed dependencies."""


@dataclass(frozen=True)
class TGD:
    """An immutable tgd ``body → head``."""

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]

    def __init__(self, body: Iterable[Atom], head: Iterable[Atom]):
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "head", tuple(head))
        if not self.head:
            raise DependencyError("a tgd head must be non-empty")
        for atom in (*self.body, *self.head):
            if atom.constants():
                raise DependencyError(f"tgds are constant-free: {atom}")
        if not self.universal_variables and not self.existential_variables:
            raise DependencyError("a tgd has at least one variable")

    # ------------------------------------------------------------------
    # Variables and width
    # ------------------------------------------------------------------

    @property
    def universal_variables(self) -> tuple[Var, ...]:
        """x̄ ∪ ȳ: all body variables."""
        return atoms_variables(self.body)

    @property
    def frontier(self) -> tuple[Var, ...]:
        """fr(σ): universally quantified variables occurring in the head."""
        body_vars = set(self.universal_variables)
        return tuple(
            v for v in atoms_variables(self.head) if v in body_vars
        )

    @property
    def existential_variables(self) -> tuple[Var, ...]:
        """z̄: head variables that do not occur in the body."""
        body_vars = set(self.universal_variables)
        return tuple(
            v for v in atoms_variables(self.head) if v not in body_vars
        )

    @property
    def width(self) -> tuple[int, int]:
        """``(n, m)``: universally / existentially quantified counts."""
        return (
            len(self.universal_variables),
            len(self.existential_variables),
        )

    def variables(self) -> tuple[Var, ...]:
        return atoms_variables((*self.body, *self.head))

    @property
    def schema(self) -> Schema:
        return Schema(
            atom.relation for atom in (*self.body, *self.head)
        )

    def size(self) -> int:
        """Total number of argument positions (the paper's size measure)."""
        return sum(len(a.args) for a in (*self.body, *self.head))

    # ------------------------------------------------------------------
    # Syntactic classes
    # ------------------------------------------------------------------

    @property
    def is_full(self) -> bool:
        return not self.existential_variables

    @property
    def is_linear(self) -> bool:
        return len(self.body) <= 1

    @property
    def is_guarded(self) -> bool:
        if not self.body:
            return True
        required = set(self.universal_variables)
        return any(
            required <= set(atom.variables()) for atom in self.body
        )

    @property
    def is_frontier_guarded(self) -> bool:
        if not self.body:
            return True
        required = set(self.frontier)
        return any(
            required <= set(atom.variables()) for atom in self.body
        )

    def guards(self) -> tuple[Atom, ...]:
        """The body atoms containing all universally quantified variables."""
        required = set(self.universal_variables)
        return tuple(
            atom for atom in self.body if required <= set(atom.variables())
        )

    def frontier_guards(self) -> tuple[Atom, ...]:
        required = set(self.frontier)
        return tuple(
            atom for atom in self.body if required <= set(atom.variables())
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def satisfied_by(self, instance: Instance) -> bool:
        """``I ⊨ σ``: every body match extends to a head match."""
        inst = _align(instance, self.schema)
        for trigger in all_extensions_of(self.body, inst):
            if not satisfies_atoms(self.head, inst, trigger):
                return False
        return True

    def violations(self, instance: Instance) -> list[dict[Var, object]]:
        """All body matches with no head extension (active triggers)."""
        inst = _align(instance, self.schema)
        return [
            trigger
            for trigger in all_extensions_of(self.body, inst)
            if not satisfies_atoms(self.head, inst, trigger)
        ]

    def as_edd(self):
        """The tgd viewed as a single-disjunct edd."""
        from .edd import EDD, ExistentialDisjunct

        return EDD(self.body, (ExistentialDisjunct(self.head),))

    # ------------------------------------------------------------------
    # Renaming
    # ------------------------------------------------------------------

    def substitute(self, mapping: Mapping[Var, Var]) -> "TGD":
        return TGD(
            tuple(a.substitute(mapping) for a in self.body),
            tuple(a.substitute(mapping) for a in self.head),
        )

    def rename_apart(self, avoid: Sequence[Var], prefix: str = "u") -> "TGD":
        """A variant whose variables avoid ``avoid``."""
        fresh = FreshVars(prefix=prefix, avoid=iter(avoid))
        mapping = {v: fresh() for v in self.variables()}
        return self.substitute(mapping)

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        head = ", ".join(str(a) for a in self.head)
        exist = self.existential_variables
        if exist:
            names = ", ".join(v.name for v in exist)
            head = f"exists {names} . {head}"
        return f"{body} -> {head}".replace("?", "")

    def __repr__(self) -> str:
        return f"TGD<{self}>"


def _align(instance: Instance, needed: Schema) -> Instance:
    """Allow evaluating a dependency on an instance over a super-schema, or
    extend the instance when the dependency mentions extra relations."""
    if needed <= instance.schema:
        return instance
    return instance.with_schema(instance.schema.union(needed))
