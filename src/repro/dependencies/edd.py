"""Existential disjunctive dependencies (edds) — Section 4.1.

An edd is ``∀x̄ (φ(x̄) → ⋁_{i=1..k} ψ_i(x̄_i))`` where each disjunct is
either an equality ``y = z`` over body variables, or an existentially
quantified conjunction ``∃ȳ_i χ_i(x̄_i, ȳ_i)``.

The class ``E_{n,m}`` (Step 1 of the proof of Theorem 4.1) consists of the
edds with at most ``n`` universally quantified variables whose disjuncts
each mention at most ``n + m`` distinct variables (so at most ``m``
existential ones).

A *disjunctive dependency* (dd, Appendix B) is an edd whose relational
disjuncts are single atoms without existential variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Union

from ..homomorphisms.search import all_extensions_of, satisfies_atoms
from ..instances.instance import Instance
from ..lang.atoms import Atom, atoms_variables
from ..lang.schema import Schema
from ..lang.terms import Var
from .egd import EGD
from .tgd import TGD, DependencyError, _align

__all__ = ["EqualityDisjunct", "ExistentialDisjunct", "Disjunct", "EDD"]


@dataclass(frozen=True)
class EqualityDisjunct:
    """``y = z`` over body variables."""

    lhs: Var
    rhs: Var

    def variables(self) -> tuple[Var, ...]:
        return (self.lhs, self.rhs) if self.lhs != self.rhs else (self.lhs,)

    def holds(self, trigger: Mapping[Var, object], instance: Instance) -> bool:
        return trigger[self.lhs] == trigger[self.rhs]

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}".replace("?", "")


@dataclass(frozen=True)
class ExistentialDisjunct:
    """``∃ȳ χ(x̄_i, ȳ)``; the existential variables are implicit (those not
    bound by the trigger at evaluation time)."""

    atoms: tuple[Atom, ...]

    def __init__(self, atoms: Iterable[Atom]):
        object.__setattr__(self, "atoms", tuple(atoms))
        if not self.atoms:
            raise DependencyError("an existential disjunct must be non-empty")

    def variables(self) -> tuple[Var, ...]:
        return atoms_variables(self.atoms)

    def holds(self, trigger: Mapping[Var, object], instance: Instance) -> bool:
        known = {
            var: elem
            for var, elem in trigger.items()
            if var in set(self.variables())
        }
        return satisfies_atoms(self.atoms, instance, known)

    def __str__(self) -> str:
        return ", ".join(str(a) for a in self.atoms).replace("?", "")


Disjunct = Union[EqualityDisjunct, ExistentialDisjunct]


@dataclass(frozen=True)
class EDD:
    """An immutable edd ``body → d1 | d2 | ... | dk``."""

    body: tuple[Atom, ...]
    disjuncts: tuple[Disjunct, ...]

    def __init__(self, body: Iterable[Atom], disjuncts: Iterable[Disjunct]):
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "disjuncts", tuple(disjuncts))
        if not self.disjuncts:
            raise DependencyError("an edd needs at least one disjunct")
        body_vars = set(atoms_variables(self.body))
        for disjunct in self.disjuncts:
            if isinstance(disjunct, EqualityDisjunct):
                for var in disjunct.variables():
                    if var not in body_vars:
                        raise DependencyError(
                            f"equality variable {var} must occur in the body"
                        )
        for atom in self.body:
            if atom.constants():
                raise DependencyError(f"edds are constant-free: {atom}")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def universal_variables(self) -> tuple[Var, ...]:
        return atoms_variables(self.body)

    def existential_variables_of(
        self, disjunct: Disjunct
    ) -> tuple[Var, ...]:
        if isinstance(disjunct, EqualityDisjunct):
            return ()
        body_vars = set(self.universal_variables)
        return tuple(
            v for v in disjunct.variables() if v not in body_vars
        )

    @property
    def width(self) -> tuple[int, int]:
        """``(n, m)``: universal count, max existential count per disjunct."""
        n = len(self.universal_variables)
        m = max(
            (
                len(self.existential_variables_of(d))
                for d in self.disjuncts
            ),
            default=0,
        )
        return (n, m)

    @property
    def schema(self) -> Schema:
        atoms = list(self.body)
        for disjunct in self.disjuncts:
            if isinstance(disjunct, ExistentialDisjunct):
                atoms.extend(disjunct.atoms)
        return Schema(atom.relation for atom in atoms)

    @property
    def is_tgd(self) -> bool:
        return len(self.disjuncts) == 1 and isinstance(
            self.disjuncts[0], ExistentialDisjunct
        )

    @property
    def is_egd(self) -> bool:
        return len(self.disjuncts) == 1 and isinstance(
            self.disjuncts[0], EqualityDisjunct
        )

    @property
    def is_dd(self) -> bool:
        """Disjunctive dependency: no existential variables, and each
        relational disjunct is a single atom."""
        for disjunct in self.disjuncts:
            if isinstance(disjunct, ExistentialDisjunct):
                if len(disjunct.atoms) != 1:
                    return False
                if self.existential_variables_of(disjunct):
                    return False
        return True

    def as_tgd(self) -> TGD:
        if not self.is_tgd:
            raise DependencyError(f"not a tgd: {self}")
        disjunct = self.disjuncts[0]
        assert isinstance(disjunct, ExistentialDisjunct)
        return TGD(self.body, disjunct.atoms)

    def as_egd(self) -> EGD:
        if not self.is_egd:
            raise DependencyError(f"not an egd: {self}")
        disjunct = self.disjuncts[0]
        assert isinstance(disjunct, EqualityDisjunct)
        return EGD(self.body, disjunct.lhs, disjunct.rhs)

    def implicants(self) -> tuple:
        """The k single-disjunct dependencies ``∀x̄ (φ → ψ_j)`` (Step 2 of
        the proof of Lemma 4.7 considers exactly these)."""
        result = []
        for disjunct in self.disjuncts:
            if isinstance(disjunct, EqualityDisjunct):
                result.append(EDD(self.body, (disjunct,)))
            else:
                result.append(EDD(self.body, (disjunct,)))
        return tuple(result)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def satisfied_by(self, instance: Instance) -> bool:
        inst = _align(instance, self.schema)
        for trigger in all_extensions_of(self.body, inst):
            if not any(d.holds(trigger, inst) for d in self.disjuncts):
                return False
        return True

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        head = " | ".join(str(d) for d in self.disjuncts)
        return f"{body} -> {head}".replace("?", "")

    def __repr__(self) -> str:
        return f"EDD<{self}>"
