"""Dependencies: tgds, egds, edds, classes, canonical forms, enumeration."""

from .advanced_classes import (
    affected_positions,
    is_sticky_set,
    is_weakly_guarded_set,
    sticky_marking,
)
from .canonical import canonical_key, canonicalize, dedup_canonical
from .classes import TGDClass, all_in_class, classify, in_class, set_width
from .denial import DenialConstraint
from .edd import EDD, Disjunct, EqualityDisjunct, ExistentialDisjunct
from .egd import EGD
from .enumeration import (
    atoms_over,
    canonical_atom_patterns,
    enumerate_dds,
    enumerate_edds,
    enumerate_frontier_guarded_tgds,
    enumerate_full_tgds,
    enumerate_guarded_tgds,
    enumerate_heads,
    enumerate_linear_tgds,
    enumerate_tgds,
    is_trivial_tgd,
)
from .tgd import TGD, DependencyError

__all__ = [
    "affected_positions", "is_sticky_set", "is_weakly_guarded_set",
    "sticky_marking",
    "canonical_key", "canonicalize", "dedup_canonical",
    "TGDClass", "all_in_class", "classify", "in_class", "set_width",
    "DenialConstraint",
    "EDD", "Disjunct", "EqualityDisjunct", "ExistentialDisjunct", "EGD",
    "atoms_over", "canonical_atom_patterns", "enumerate_dds", "enumerate_edds",
    "enumerate_frontier_guarded_tgds", "enumerate_full_tgds",
    "enumerate_guarded_tgds", "enumerate_heads", "enumerate_linear_tgds",
    "enumerate_tgds", "is_trivial_tgd",
    "TGD", "DependencyError",
]
