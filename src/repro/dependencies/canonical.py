"""Canonical forms of dependencies up to variable renaming.

Enumerating ``LTGD_{n,m}`` / ``GTGD_{n,m}`` candidates (Algorithms 1 and 2)
must not distinguish alphabetic variants: ``R(x) -> S(x)`` and
``R(y) -> S(y)`` are the same dependency.  We canonicalize by brute-force
minimization over variable bijections, which is exact and cheap for the
small variable counts the algorithms range over (the search space is
``k!`` for ``k`` variables; the enumerators keep ``k = n + m`` small).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from ..lang.atoms import Atom
from ..lang.terms import Var
from .tgd import TGD

__all__ = [
    "canonical_key",
    "canonicalize",
    "dedup_canonical",
    "MAX_CANONICAL_VARIABLES",
]

MAX_CANONICAL_VARIABLES = 9


def _atoms_key(atoms: Iterable[Atom], mapping: dict[Var, int]) -> tuple:
    rendered = []
    for atom in atoms:
        rendered.append(
            (
                atom.relation.name,
                tuple(mapping[arg] for arg in atom.args),  # type: ignore[index]
            )
        )
    return tuple(sorted(rendered))


def canonical_key(tgd: TGD) -> tuple:
    """A hashable key equal for exactly the alphabetic variants of ``tgd``.

    Body and head are treated as *sets* of atoms (conjunction order is
    irrelevant), and variables are minimized over all bijections into
    ``0..k-1``.  Existential and universal variables may not be exchanged
    (a bijection mapping a body variable to a head-only slot would change
    the sentence), which the minimization respects automatically because
    the body/head split is part of the key.
    """
    variables = tgd.variables()
    if len(variables) > MAX_CANONICAL_VARIABLES:
        raise ValueError(
            f"canonicalization supports up to {MAX_CANONICAL_VARIABLES} "
            f"variables, got {len(variables)}"
        )
    best: tuple | None = None
    indices = range(len(variables))
    for perm in itertools.permutations(indices):
        mapping = {var: perm[i] for i, var in enumerate(variables)}
        key = (
            _atoms_key(tgd.body, mapping),
            _atoms_key(tgd.head, mapping),
        )
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def canonicalize(tgd: TGD) -> TGD:
    """The canonical alphabetic variant (variables ``v0, v1, ...``)."""
    variables = tgd.variables()
    best_key: tuple | None = None
    best_mapping: dict[Var, Var] | None = None
    for perm in itertools.permutations(range(len(variables))):
        mapping = {var: perm[i] for i, var in enumerate(variables)}
        key = (
            _atoms_key(tgd.body, mapping),
            _atoms_key(tgd.head, mapping),
        )
        if best_key is None or key < best_key:
            best_key = key
            best_mapping = {
                var: Var(f"v{perm[i]}") for i, var in enumerate(variables)
            }
    assert best_mapping is not None
    return tgd.substitute(best_mapping)


def dedup_canonical(tgds: Sequence[TGD]) -> list[TGD]:
    """Drop alphabetic duplicates, keeping first occurrences."""
    seen: set[tuple] = set()
    unique: list[TGD] = []
    for tgd in tgds:
        key = canonical_key(tgd)
        if key not in seen:
            seen.add(key)
            unique.append(tgd)
    return unique
