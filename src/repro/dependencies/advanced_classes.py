"""Set-level Datalog± classes: affected positions, weak guardedness,
and stickiness.

The classes of Section 2 (full / linear / guarded / frontier-guarded)
are per-tgd; the wider Datalog± family the paper builds on
(Calì–Gottlob–Kifer/Lukasiewicz/Pieris) also uses *set-level* classes
that look at how rules interact:

* **affected positions** — the positions that may carry labeled nulls in
  the chase: positions of existential variables, closed under
  propagation through frontier variables that occur only at affected
  body positions;
* **weakly guarded** — some body atom of each rule covers all the
  universally quantified variables occurring *only at affected
  positions* (guardedness relaxed to where nulls can actually appear);
* **sticky** — the marking procedure: variables that can be "lost"
  (body variables missing from the head, propagated backwards through
  head positions) may not be join variables.

These make `classify`-style tooling complete enough to place a given Σ
in the standard decidability map.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..lang.terms import Var
from .tgd import TGD

__all__ = [
    "affected_positions",
    "is_weakly_guarded_set",
    "sticky_marking",
    "is_sticky_set",
]

Position = tuple[str, int]


def _head_positions_of(tgd: TGD, var: Var) -> list[Position]:
    positions = []
    for atom in tgd.head:
        for index, arg in enumerate(atom.args):
            if arg == var:
                positions.append((atom.relation.name, index))
    return positions


def _body_positions_of(tgd: TGD, var: Var) -> list[Position]:
    positions = []
    for atom in tgd.body:
        for index, arg in enumerate(atom.args):
            if arg == var:
                positions.append((atom.relation.name, index))
    return positions


def affected_positions(tgds: Sequence[TGD]) -> frozenset[Position]:
    """The positions that can hold labeled nulls in some chase.

    Base: positions of existential variables in heads.  Step: a head
    position of a frontier variable is affected if *every* body position
    of that variable is affected.
    """
    affected: set[Position] = set()
    for tgd in tgds:
        for var in tgd.existential_variables:
            affected.update(_head_positions_of(tgd, var))
    changed = True
    while changed:
        changed = False
        for tgd in tgds:
            for var in tgd.frontier:
                body_positions = _body_positions_of(tgd, var)
                if body_positions and all(
                    pos in affected for pos in body_positions
                ):
                    for pos in _head_positions_of(tgd, var):
                        if pos not in affected:
                            affected.add(pos)
                            changed = True
    return frozenset(affected)


def is_weakly_guarded_set(tgds: Sequence[TGD]) -> bool:
    """Weak guardedness: per rule, some body atom contains every
    universally quantified variable that occurs *only* at affected
    positions of the body.

    Every guarded set is weakly guarded (the guard covers everything).
    """
    affected = affected_positions(tgds)
    for tgd in tgds:
        if not tgd.body:
            continue
        dangerous = [
            var
            for var in tgd.universal_variables
            if all(
                pos in affected for pos in _body_positions_of(tgd, var)
            )
        ]
        required = set(dangerous)
        if not any(
            required <= set(atom.variables()) for atom in tgd.body
        ):
            return False
    return True


def sticky_marking(tgds: Sequence[TGD]) -> dict[int, frozenset[Var]]:
    """The sticky marking, per rule index.

    Initial step: mark every body variable of σ that does not occur in
    ``head(σ)``.  Propagation: if a marked variable of some rule occurs
    in its body at position π, then for every rule whose *head* has a
    universally quantified variable at π, mark that variable (in that
    rule's body).  Repeat to fixpoint.
    """
    marked: dict[int, set[Var]] = {i: set() for i in range(len(tgds))}
    for i, tgd in enumerate(tgds):
        head_vars = {v for atom in tgd.head for v in atom.variables()}
        for var in tgd.universal_variables:
            if var not in head_vars:
                marked[i].add(var)
    changed = True
    while changed:
        changed = False
        marked_positions: set[Position] = {
            pos
            for i, tgd in enumerate(tgds)
            for var in marked[i]
            for pos in _body_positions_of(tgd, var)
        }
        for i, tgd in enumerate(tgds):
            frontier = set(tgd.frontier)
            for atom in tgd.head:
                for index, arg in enumerate(atom.args):
                    if (
                        isinstance(arg, Var)
                        and arg in frontier
                        and (atom.relation.name, index) in marked_positions
                        and arg not in marked[i]
                    ):
                        marked[i].add(arg)
                        changed = True
    return {i: frozenset(vars_) for i, vars_ in marked.items()}


def is_sticky_set(tgds: Sequence[TGD]) -> bool:
    """Stickiness: no marked variable occurs more than once in its
    rule's body."""
    tgds = list(tgds)
    marking = sticky_marking(tgds)
    for i, tgd in enumerate(tgds):
        for var in marking[i]:
            occurrences = sum(
                1
                for atom in tgd.body
                for arg in atom.args
                if arg == var
            )
            if occurrences > 1:
                return False
    return True
