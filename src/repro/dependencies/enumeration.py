"""Exhaustive enumeration of dependency fragments.

Algorithms 1 and 2 of the paper (Section 9.2) search the *finite* spaces
``LTGD_{n,m}`` and ``GTGD_{n,m}`` over a schema **S**.  The enumerators
here generate those spaces up to variable renaming.

Two completeness-preserving reductions keep the spaces manageable:

* **Canonical dedup** — alphabetic variants are generated once
  (:mod:`repro.dependencies.canonical`).
* **Head decomposition** — a head splits into its existentially-connected
  components: ``φ → ∃z̄ (ψ1 ∧ ψ2)`` with ``ψ1, ψ2`` sharing no existential
  variable is equivalent to the two tgds ``φ → ψ1`` and ``φ → ψ2``.
  Enumerating only connected heads therefore loses no logical content;
  the set of all entailed connected-head candidates entails every entailed
  candidate.  (Ablated in benchmarks/bench_enumeration.py via
  ``connected_heads_only=False``.)
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from ..lang.atoms import Atom, atoms_variables
from ..lang.schema import Schema
from ..lang.terms import Var
from ..telemetry import TELEMETRY
from .canonical import canonical_key
from .edd import EDD, EqualityDisjunct, ExistentialDisjunct
from .tgd import TGD

__all__ = [
    "atoms_over",
    "canonical_atom_patterns",
    "enumerate_heads",
    "enumerate_linear_tgds",
    "enumerate_guarded_tgds",
    "enumerate_frontier_guarded_tgds",
    "enumerate_full_tgds",
    "enumerate_tgds",
    "enumerate_dds",
    "enumerate_edds",
    "is_trivial_tgd",
]


def _var_pool(count: int, prefix: str) -> tuple[Var, ...]:
    return tuple(Var(f"{prefix}{i}") for i in range(count))


def atoms_over(schema: Schema, variables: Sequence[Var]) -> list[Atom]:
    """All atoms ``R(v̄)`` with ``v̄`` over the given variables."""
    atoms = []
    for rel in schema:
        for args in itertools.product(variables, repeat=rel.arity):
            atoms.append(Atom(rel, args))
    return atoms


def canonical_atom_patterns(
    schema: Schema, max_variables: int, prefix: str = "x"
) -> list[Atom]:
    """All atoms up to variable renaming, using at most ``max_variables``
    distinct variables.

    Canonical form: argument positions carry variable indices in
    *restricted growth* order — each position either reuses an earlier
    index or introduces the next fresh one — so every renaming class is
    produced exactly once.
    """
    pool = _var_pool(max_variables, prefix)
    atoms: list[Atom] = []
    for rel in schema:
        if rel.arity == 0:
            atoms.append(Atom(rel, ()))
            continue
        patterns: list[list[int]] = [[0]]
        for __ in range(rel.arity - 1):
            grown = []
            for pat in patterns:
                top = max(pat)
                for value in range(top + 2):
                    grown.append(pat + [value])
            patterns = grown
        for pat in patterns:
            if max(pat) + 1 <= max_variables:
                atoms.append(Atom(rel, tuple(pool[i] for i in pat)))
    return atoms


def _connected_by_existentials(
    atoms: Sequence[Atom], existentials: frozenset[Var]
) -> bool:
    """Is the atom set a single component of the graph linking atoms that
    share an existential variable?  Atoms without existential variables are
    isolated, so any multi-atom set containing one is disconnected."""
    if len(atoms) <= 1:
        return True
    var_sets = [
        set(atom.variables()) & existentials for atom in atoms
    ]
    if any(not vs for vs in var_sets):
        return False
    seen = {0}
    frontier = [0]
    while frontier:
        current = frontier.pop()
        for other in range(len(atoms)):
            if other not in seen and var_sets[current] & var_sets[other]:
                seen.add(other)
                frontier.append(other)
    return len(seen) == len(atoms)


def enumerate_heads(
    schema: Schema,
    frontier_pool: Sequence[Var],
    m: int,
    *,
    max_atoms: int | None = None,
    connected_only: bool = True,
    existential_prefix: str = "w",
) -> Iterator[tuple[Atom, ...]]:
    """All candidate heads over ``frontier_pool`` plus ≤ m existential
    variables (non-empty conjunctions; connected ones by default)."""
    z_pool = _var_pool(m, existential_prefix)
    existentials = frozenset(z_pool)
    all_atoms = atoms_over(schema, tuple(frontier_pool) + z_pool)
    limit = len(all_atoms) if max_atoms is None else min(max_atoms, len(all_atoms))
    for size in range(1, limit + 1):
        for combo in itertools.combinations(all_atoms, size):
            if connected_only and not _connected_by_existentials(
                combo, existentials
            ):
                continue
            yield combo


def _emit_unique(candidates: Iterable[TGD]) -> Iterator[TGD]:
    seen: set[tuple] = set()
    for tgd in candidates:
        key = canonical_key(tgd)
        if key not in seen:
            seen.add(key)
            if TELEMETRY.enabled:
                TELEMETRY.count("enumeration.candidates")
            yield tgd
        elif TELEMETRY.enabled:
            TELEMETRY.count("enumeration.duplicates")


def enumerate_linear_tgds(
    schema: Schema,
    n: int,
    m: int,
    *,
    max_head_atoms: int | None = None,
    connected_heads_only: bool = True,
    include_empty_body: bool = True,
) -> Iterator[TGD]:
    """``LTGD_{n,m}`` over ``schema``, up to renaming.

    Complete up to logical equivalence when ``max_head_atoms is None`` and
    ``connected_heads_only`` (see module docstring).
    """

    def generate() -> Iterator[TGD]:
        bodies: list[tuple[Atom, ...]] = []
        if include_empty_body:
            bodies.append(())
        bodies.extend((atom,) for atom in canonical_atom_patterns(schema, n))
        for body in bodies:
            frontier_pool = atoms_variables(body)
            for head in enumerate_heads(
                schema,
                frontier_pool,
                m,
                max_atoms=max_head_atoms,
                connected_only=connected_heads_only,
            ):
                try:
                    yield TGD(body, head)
                except Exception:
                    continue

    yield from _emit_unique(generate())


def enumerate_guarded_tgds(
    schema: Schema,
    n: int,
    m: int,
    *,
    max_extra_body_atoms: int | None = None,
    max_head_atoms: int | None = None,
    connected_heads_only: bool = True,
    include_empty_body: bool = True,
) -> Iterator[TGD]:
    """``GTGD_{n,m}`` over ``schema``, up to renaming.

    Every guarded body is (guard atom) + (extra atoms over the guard's
    variables), since the guard must contain all universally quantified
    variables.
    """

    def generate() -> Iterator[TGD]:
        bodies: list[tuple[Atom, ...]] = []
        if include_empty_body:
            bodies.append(())
        for guard in canonical_atom_patterns(schema, n):
            guard_vars = guard.variables()
            others = [
                atom
                for atom in atoms_over(schema, guard_vars)
                if atom != guard
            ]
            cap = (
                len(others)
                if max_extra_body_atoms is None
                else min(max_extra_body_atoms, len(others))
            )
            for size in range(cap + 1):
                for extra in itertools.combinations(others, size):
                    bodies.append((guard, *extra))
        for body in bodies:
            frontier_pool = atoms_variables(body)
            for head in enumerate_heads(
                schema,
                frontier_pool,
                m,
                max_atoms=max_head_atoms,
                connected_only=connected_heads_only,
            ):
                try:
                    yield TGD(body, head)
                except Exception:
                    continue

    yield from _emit_unique(generate())


def enumerate_tgds(
    schema: Schema,
    n: int,
    m: int,
    *,
    max_body_atoms: int | None = 2,
    max_head_atoms: int | None = None,
    connected_heads_only: bool = True,
    include_empty_body: bool = True,
) -> Iterator[TGD]:
    """``TGD_{n,m}`` over ``schema`` up to renaming, with a body-size cap
    (the unrestricted space is doubly exponential; cap consciously)."""

    def generate() -> Iterator[TGD]:
        pool = _var_pool(n, "x")
        all_atoms = atoms_over(schema, pool)
        cap = (
            len(all_atoms)
            if max_body_atoms is None
            else min(max_body_atoms, len(all_atoms))
        )
        start = 0 if include_empty_body else 1
        for size in range(start, cap + 1):
            for body in itertools.combinations(all_atoms, size):
                frontier_pool = atoms_variables(body)
                for head in enumerate_heads(
                    schema,
                    frontier_pool,
                    m,
                    max_atoms=max_head_atoms,
                    connected_only=connected_heads_only,
                ):
                    try:
                        yield TGD(body, head)
                    except Exception:
                        continue

    yield from _emit_unique(generate())


def enumerate_frontier_guarded_tgds(
    schema: Schema,
    n: int,
    m: int,
    *,
    max_body_atoms: int | None = 2,
    max_head_atoms: int | None = None,
    connected_heads_only: bool = True,
    include_empty_body: bool = True,
) -> Iterator[TGD]:
    """``FGTGD_{n,m}`` over ``schema`` up to renaming (body-size capped)."""
    for tgd in enumerate_tgds(
        schema,
        n,
        m,
        max_body_atoms=max_body_atoms,
        max_head_atoms=max_head_atoms,
        connected_heads_only=connected_heads_only,
        include_empty_body=include_empty_body,
    ):
        if tgd.is_frontier_guarded:
            yield tgd


def enumerate_full_tgds(
    schema: Schema,
    n: int,
    *,
    max_body_atoms: int | None = 2,
) -> Iterator[TGD]:
    """``FTGD_n = TGD_{n,0}`` up to renaming (single-atom heads suffice
    since a full head always decomposes)."""
    yield from enumerate_tgds(
        schema,
        n,
        0,
        max_body_atoms=max_body_atoms,
        max_head_atoms=1,
        include_empty_body=False,
    )


def enumerate_dds(
    schema: Schema,
    n: int,
    *,
    max_body_atoms: int | None = 2,
    max_disjuncts: int = 2,
) -> Iterator[EDD]:
    """Disjunctive dependencies with at most ``n`` variables (Appendix B):
    no existentials, disjuncts are equalities or single atoms over body
    variables."""
    pool = _var_pool(n, "x")
    all_atoms = atoms_over(schema, pool)
    cap = (
        len(all_atoms)
        if max_body_atoms is None
        else min(max_body_atoms, len(all_atoms))
    )
    for size in range(1, cap + 1):
        for body in itertools.combinations(all_atoms, size):
            body_vars = atoms_variables(body)
            disjunct_pool: list = [
                ExistentialDisjunct((atom,))
                for atom in atoms_over(schema, body_vars)
            ]
            disjunct_pool.extend(
                EqualityDisjunct(a, b)
                for a, b in itertools.combinations(body_vars, 2)
            )
            for count in range(1, max_disjuncts + 1):
                for disjuncts in itertools.combinations(disjunct_pool, count):
                    yield EDD(body, disjuncts)


def enumerate_edds(
    schema: Schema,
    n: int,
    m: int,
    *,
    max_body_atoms: int | None = 1,
    max_disjuncts: int = 2,
    max_atoms_per_disjunct: int = 1,
) -> Iterator[EDD]:
    """A fragment of ``E_{n,m}`` (Step 1 of Theorem 4.1): edds with ≤ n
    universal variables whose disjuncts each use ≤ m existentials.

    The full class is doubly exponential; the caps select the fragment to
    generate (the defaults cover the paper's running examples).  Bodies
    may be empty; disjuncts are equalities over body variables or
    existential conjunctions over body + existential variables.
    """
    pool = _var_pool(n, "x")
    z_pool = _var_pool(m, "w")
    all_body_atoms = atoms_over(schema, pool)
    body_cap = (
        len(all_body_atoms)
        if max_body_atoms is None
        else min(max_body_atoms, len(all_body_atoms))
    )
    bodies: list[tuple[Atom, ...]] = [()]
    for size in range(1, body_cap + 1):
        bodies.extend(itertools.combinations(all_body_atoms, size))
    for body in bodies:
        body_vars = atoms_variables(body)
        disjunct_pool: list = [
            EqualityDisjunct(a, b)
            for a, b in itertools.combinations(body_vars, 2)
        ]
        head_atoms = atoms_over(schema, tuple(body_vars) + z_pool)
        for size in range(1, max_atoms_per_disjunct + 1):
            for combo in itertools.combinations(head_atoms, size):
                disjunct_pool.append(ExistentialDisjunct(combo))
        for count in range(1, max_disjuncts + 1):
            for disjuncts in itertools.combinations(disjunct_pool, count):
                yield EDD(body, disjuncts)


def is_trivial_tgd(tgd: TGD) -> bool:
    """Head contained in the body — entailed by the empty set."""
    return set(tgd.head) <= set(tgd.body)
