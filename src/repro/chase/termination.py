"""Static chase-termination analysis: weak acyclicity.

A set of tgds is *weakly acyclic* if its position dependency graph has no
cycle through a "special" edge.  Weak acyclicity guarantees that every
chase sequence terminates in polynomially many steps (Fagin et al., data
exchange); it is the certificate our entailment layer uses to decide when
a chase-based answer is definitive without a budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..telemetry import TELEMETRY

__all__ = ["Position", "WeakAcyclicityReport", "position_graph", "is_weakly_acyclic", "weak_acyclicity_report"]

Position = tuple[str, int]  # (relation name, argument index)


@dataclass(frozen=True)
class WeakAcyclicityReport:
    """Outcome of the analysis; ``cycle`` witnesses a violation."""

    weakly_acyclic: bool
    cycle: tuple[Position, ...] | None

    def __bool__(self) -> bool:
        return self.weakly_acyclic


def position_graph(tgds: Iterable[TGD]) -> nx.DiGraph:
    """The position dependency graph.

    For every tgd and every body occurrence of a universally quantified
    variable ``x`` at position ``p``:

    * a *regular* edge ``p → q`` for every head position ``q`` of ``x``;
    * a *special* edge ``p → q`` for every head position ``q`` of every
      existentially quantified variable — provided ``x`` occurs in the
      head (i.e. ``x`` is a frontier variable).
    """
    if TELEMETRY.enabled:
        TELEMETRY.count("analysis.position_graph_builds")
    graph = nx.DiGraph()
    for tgd in tgds:
        frontier = set(tgd.frontier)
        existential = set(tgd.existential_variables)
        head_positions: dict[object, list[Position]] = {}
        for atom in tgd.head:
            for i, arg in enumerate(atom.args):
                head_positions.setdefault(arg, []).append(
                    (atom.relation.name, i)
                )
        existential_targets = [
            pos
            for var in existential
            for pos in head_positions.get(var, [])
        ]
        for atom in tgd.body:
            for i, arg in enumerate(atom.args):
                source: Position = (atom.relation.name, i)
                graph.add_node(source)
                if arg in frontier:
                    for target in head_positions.get(arg, []):
                        _add_edge(graph, source, target, special=False)
                    for target in existential_targets:
                        _add_edge(graph, source, target, special=True)
        for positions in head_positions.values():
            for pos in positions:
                graph.add_node(pos)
    return graph


def _add_edge(
    graph: nx.DiGraph, source: Position, target: Position, *, special: bool
) -> None:
    if graph.has_edge(source, target):
        if special:
            graph[source][target]["special"] = True
    else:
        graph.add_edge(source, target, special=special)


def _shortest_path(
    graph: "nx.DiGraph", start: Position, goal: Position
) -> list[Position]:
    """BFS shortest path expanding successors in sorted order, so the
    returned path never depends on hash seeds."""
    if start == goal:
        return [start]
    parents: dict[Position, Position] = {start: start}
    frontier = [start]
    while frontier:
        next_frontier: list[Position] = []
        for node in frontier:
            for succ in sorted(graph.successors(node)):
                if succ in parents:
                    continue
                parents[succ] = node
                if succ == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return path[::-1]
                next_frontier.append(succ)
        frontier = next_frontier
    return [start, goal]  # pragma: no cover - goal is always reachable


def weak_acyclicity_report(
    dependencies: Sequence[TGD | EGD],
) -> WeakAcyclicityReport:
    """Weak acyclicity of the tgds in the set (egds never obstruct it).

    On failure the witness is the canonical special cycle: among the
    special edges ``source → target`` inside one strongly connected
    component, the lexicographically first (by position), closed by the
    BFS-shortest path back from ``target`` to ``source`` with sorted
    expansion.  Same set, same witness — independent of hash
    randomization and dependency iteration internals.
    """
    tgds = [dep for dep in dependencies if isinstance(dep, TGD)]
    graph = position_graph(tgds)
    component_of: dict[Position, int] = {}
    for index, component in enumerate(
        nx.strongly_connected_components(graph)
    ):
        for node in component:
            component_of[node] = index
    for source in sorted(graph.nodes):
        for target in sorted(graph.successors(source)):
            if (
                component_of[target] == component_of[source]
                and graph[source][target]["special"]
            ):
                path = _shortest_path(graph, target, source)
                return WeakAcyclicityReport(False, tuple([source, *path]))
    return WeakAcyclicityReport(True, None)


def is_weakly_acyclic(dependencies: Sequence[TGD | EGD]) -> bool:
    return weak_acyclicity_report(dependencies).weakly_acyclic
