"""Static chase-termination analysis: weak acyclicity.

A set of tgds is *weakly acyclic* if its position dependency graph has no
cycle through a "special" edge.  Weak acyclicity guarantees that every
chase sequence terminates in polynomially many steps (Fagin et al., data
exchange); it is the certificate our entailment layer uses to decide when
a chase-based answer is definitive without a budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD

__all__ = ["Position", "WeakAcyclicityReport", "position_graph", "is_weakly_acyclic", "weak_acyclicity_report"]

Position = tuple[str, int]  # (relation name, argument index)


@dataclass(frozen=True)
class WeakAcyclicityReport:
    """Outcome of the analysis; ``cycle`` witnesses a violation."""

    weakly_acyclic: bool
    cycle: tuple[Position, ...] | None

    def __bool__(self) -> bool:
        return self.weakly_acyclic


def position_graph(tgds: Iterable[TGD]) -> nx.DiGraph:
    """The position dependency graph.

    For every tgd and every body occurrence of a universally quantified
    variable ``x`` at position ``p``:

    * a *regular* edge ``p → q`` for every head position ``q`` of ``x``;
    * a *special* edge ``p → q`` for every head position ``q`` of every
      existentially quantified variable — provided ``x`` occurs in the
      head (i.e. ``x`` is a frontier variable).
    """
    graph = nx.DiGraph()
    for tgd in tgds:
        frontier = set(tgd.frontier)
        existential = set(tgd.existential_variables)
        head_positions: dict[object, list[Position]] = {}
        for atom in tgd.head:
            for i, arg in enumerate(atom.args):
                head_positions.setdefault(arg, []).append(
                    (atom.relation.name, i)
                )
        existential_targets = [
            pos
            for var in existential
            for pos in head_positions.get(var, [])
        ]
        for atom in tgd.body:
            for i, arg in enumerate(atom.args):
                source: Position = (atom.relation.name, i)
                graph.add_node(source)
                if arg in frontier:
                    for target in head_positions.get(arg, []):
                        _add_edge(graph, source, target, special=False)
                    for target in existential_targets:
                        _add_edge(graph, source, target, special=True)
        for positions in head_positions.values():
            for pos in positions:
                graph.add_node(pos)
    return graph


def _add_edge(
    graph: nx.DiGraph, source: Position, target: Position, *, special: bool
) -> None:
    if graph.has_edge(source, target):
        if special:
            graph[source][target]["special"] = True
    else:
        graph.add_edge(source, target, special=special)


def weak_acyclicity_report(
    dependencies: Sequence[TGD | EGD],
) -> WeakAcyclicityReport:
    """Weak acyclicity of the tgds in the set (egds never obstruct it)."""
    tgds = [dep for dep in dependencies if isinstance(dep, TGD)]
    graph = position_graph(tgds)
    for component in nx.strongly_connected_components(graph):
        for source in component:
            for target in graph.successors(source):
                if target in component and graph[source][target]["special"]:
                    try:
                        path = nx.shortest_path(graph, target, source)
                    except nx.NetworkXNoPath:  # pragma: no cover
                        path = [target, source]
                    return WeakAcyclicityReport(
                        False, tuple([source, *path])
                    )
    return WeakAcyclicityReport(True, None)


def is_weakly_acyclic(dependencies: Sequence[TGD | EGD]) -> bool:
    return weak_acyclicity_report(dependencies).weakly_acyclic
