"""The chase and its termination analysis."""

from .engine import (
    STRATEGIES,
    ChaseError,
    ChaseMonitorStop,
    ChaseResult,
    Inventor,
    StopReason,
    chase,
)
from .provenance import Firing, TracedChaseResult, explain, traced_chase
from .termination import (
    WeakAcyclicityReport,
    is_weakly_acyclic,
    position_graph,
    weak_acyclicity_report,
)

__all__ = [
    "STRATEGIES", "ChaseError", "ChaseMonitorStop", "ChaseResult",
    "Inventor", "StopReason", "chase",
    "Firing", "TracedChaseResult", "explain", "traced_chase",
    "WeakAcyclicityReport", "is_weakly_acyclic", "position_graph",
    "weak_acyclicity_report",
]
