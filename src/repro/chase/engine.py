"""The chase procedure.

Given an instance and a set of tgds/egds, the chase repairs violations by
inserting facts with fresh labeled nulls (tgds) or merging elements
(egds), producing a *universal* model when it terminates: a model of Σ
containing the input that maps homomorphically into every such model.
This is the engine behind all entailment checks (Section 9.2 reduces
``Σ ⊨ σ`` to chasing a frozen body — Maier, Mendelzon, Sagiv).

Two variants:

* **restricted** (standard) — a trigger fires only if the head has no
  extension in the current instance;
* **oblivious** — every trigger fires exactly once, regardless.

Two evaluation strategies compute the same result:

* **seminaive** (default) — delta-driven: each round, a dependency's
  body is only matched against joins that touch at least one fact added
  since that dependency was last evaluated, so old triggers are never
  re-derived.  The working state keeps a per-relation, per-position
  hash index that the homomorphism search probes directly.
* **naive** — re-enumerates every trigger of every dependency each
  round (the textbook fixpoint loop).  Kept forever as the reference
  implementation: ``tests/test_differential_chase.py`` cross-checks the
  two engines on randomized scenarios.

Both strategies fire the active triggers of a dependency in a canonical
deterministic order (sorted by the bindings of the universally
quantified variables), which makes the chase output — including the
numbering of invented nulls — a function of ``(instance, dependencies,
variant)`` alone, independent of the evaluation strategy.  That is what
lets the differential harness assert *equality*, not just isomorphism.

General tgd sets need not terminate; the engine takes round/fact budgets
and reports whether it reached a fixpoint.  Use
:func:`repro.chase.termination.is_weakly_acyclic` for a static
termination guarantee.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from types import ModuleType
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    Union,
)

try:  # pragma: no cover - platform dependent
    import resource as _resource_module

    _resource: ModuleType | None = _resource_module
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

from ..dependencies.denial import DenialConstraint
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..homomorphisms.plans import DEFAULT_ORDER, DEFAULT_PLAN, ORDER_MODES, PLAN_MODES
from ..homomorphisms.search import all_extensions_of, find_extension, satisfies_atoms
from ..instances.instance import BACKENDS, DEFAULT_BACKEND, Instance
from ..lang.atoms import Atom
from ..lang.schema import Relation, Schema
from ..lang.terms import Const, FreshNulls, Null, Var, element_sort_key
from ..stats.relation import RelationStats, StatsAccumulator
from ..telemetry import TELEMETRY, MetricsProbe, span

if TYPE_CHECKING:  # pragma: no cover
    from ..columnar.state import ColumnarState
    from ..telemetry.report import RunReport

__all__ = [
    "ChaseResult", "ChaseError", "ChaseMonitorStop", "StopReason",
    "chase", "Inventor", "STRATEGIES",
]

Dependency = Union[TGD, EGD, DenialConstraint]

STRATEGIES = ("seminaive", "naive")

# A pluggable term inventor: called once per existential variable of a
# firing trigger with (tgd, variable, assignment-so-far) and returns the
# domain element to substitute.  The default (None) invents fresh
# labeled nulls; repro.analysis.semantic plugs in Skolem-term builders
# whose cycle monitors abort the run by raising ChaseMonitorStop.
Inventor = Callable[[TGD, Var, Mapping[Var, object]], object]


class ChaseError(ValueError):
    """Raised on invalid chase configuration."""


class ChaseMonitorStop(Exception):
    """Raised by an :data:`Inventor` to abort the chase.

    The engine converts it into a clean non-terminated result with
    ``stop_reason == StopReason.MONITOR`` — the seam the chase-based
    acyclicity analyses (MSA/MFA) use to stop as soon as their cycle
    monitor finds a Skolem function nested inside itself.
    """


class StopReason:
    """Why a chase run stopped (``ChaseResult.stop_reason``)."""

    FIXPOINT = "fixpoint"
    ROUND_BUDGET = "round_budget"
    FACT_BUDGET = "fact_budget"
    MEMORY = "memory_budget"
    EGD_FAILURE = "egd_failure"
    DENIAL_VIOLATION = "denial_violation"
    MONITOR = "monitor"

    ALL = (FIXPOINT, ROUND_BUDGET, FACT_BUDGET, MEMORY, EGD_FAILURE,
           DENIAL_VIOLATION, MONITOR)


@dataclass(frozen=True)
class ChaseResult:
    """The outcome of a chase run.

    ``terminated`` — a fixpoint was reached within the budget.
    ``failed`` — an egd required two distinct constants to be equal, or
    a denial constraint fired.  When ``failed`` is true, ``instance`` is
    the state at failure time.

    ``stop_reason`` makes the cause explicit (the bare flags cannot
    separate "round budget" from "fact budget", nor an egd clash from a
    denial violation): one of :class:`StopReason`'s values.

    ``metrics`` is the counter delta observed during this run when
    telemetry was enabled (``{}`` otherwise) — e.g.
    ``{"chase.triggers_fired": 12, "hom.backtracks": 90}``.

    ``config`` records the effective run configuration (variant,
    strategy, join-plan backend, certificate mode, budgets) — what
    :meth:`run_report` freezes into the ``RunReport`` artifact.
    """

    instance: Instance
    terminated: bool
    failed: bool
    rounds: int
    fired: int
    nulls_created: int
    stop_reason: str = ""
    metrics: Mapping[str, int] = field(default_factory=dict, compare=False)
    config: Mapping[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.stop_reason:
            # Best-effort inference for constructions that predate
            # stop_reason; budget kinds are not distinguishable here.
            if self.failed:
                inferred = StopReason.EGD_FAILURE
            elif self.terminated:
                inferred = StopReason.FIXPOINT
            else:
                inferred = StopReason.ROUND_BUDGET
            object.__setattr__(self, "stop_reason", inferred)

    @property
    def successful(self) -> bool:
        return self.terminated and not self.failed

    def run_report(self) -> "RunReport":
        """The schema-versioned observability artifact for this run:
        the recorded configuration plus this run's counter delta and
        the process-wide histogram state (see
        :mod:`repro.telemetry.report`)."""
        from ..telemetry.report import RunReport, build_run_report

        report: RunReport = build_run_report(
            "chase", self.config, counters=self.metrics
        )
        return report


class _State:
    """Mutable chase working state with an incremental positional index.

    Exposes the same probe interface as :class:`Instance`
    (``tuples`` / ``tuples_with``), so the homomorphism search runs
    directly against the live state — no snapshot copies on the hot
    path.

    Semi-naive bookkeeping: every genuinely new fact is appended to
    ``log``; per-dependency cursors into the log define the delta each
    dependency still has to see.  Egd merges rename elements in place,
    which invalidates the deltas — ``generation`` is bumped and the log
    rebuilt, forcing a full re-enumeration on the next sweep.
    """

    def __init__(self, instance: Instance, schema: Schema) -> None:
        self.schema = schema
        self.domain: set[object] = set(instance.domain)
        self.relations: dict[Relation, set[tuple[object, ...]]] = {
            rel: set(
                instance.tuples(rel.name)
                if rel.name in instance.schema
                else ()
            )
            for rel in schema
        }
        self.generation = 0
        self.epoch = 0
        self.log: list[tuple[Relation, tuple[object, ...]]] = []
        self._index: dict[Relation, dict[tuple[int, object], set[tuple[object, ...]]]] = {}
        self._sorted: dict[object, tuple[int, tuple[tuple[object, ...], ...]]] = {}
        self._stats: dict[Relation, StatsAccumulator] = {}
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute the index, log and statistics from the relation
        sets."""
        self._index = {rel: {} for rel in self.relations}
        self._sorted.clear()
        self.log = []
        self._stats = {
            rel: StatsAccumulator(rel.arity) for rel in self.relations
        }
        for rel, tuples in self.relations.items():
            buckets = self._index[rel]
            stats = self._stats[rel]
            for tup in tuples:
                self.log.append((rel, tup))
                stats.rows += 1
                for pos, elem in enumerate(tup):
                    bucket = buckets.get((pos, elem))
                    if bucket is None:
                        buckets[pos, elem] = {tup}
                        stats.distinct[pos] += 1
                        if not stats.max_bucket[pos]:
                            stats.max_bucket[pos] = 1
                    else:
                        bucket.add(tup)
                        if len(bucket) > stats.max_bucket[pos]:
                            stats.max_bucket[pos] = len(bucket)

    # -- Instance-compatible probe interface ---------------------------

    def tuples(self, relation: Relation) -> set:
        return self.relations[relation]

    def tuples_with(
        self, relation: Relation, position: int, element: object
    ) -> set:
        bucket = self._index[relation].get((position, element))
        return bucket if bucket is not None else _EMPTY_SET

    def relation_stats(self, relation: Relation) -> RelationStats:
        """An O(arity) snapshot of the incrementally maintained
        statistics — the adaptive ordering strategy's stats hook."""
        return self._stats[relation].snapshot()

    # -- sorted views for the compiled join plans ----------------------
    #
    # The compiled search path enumerates candidates in the canonical
    # element_sort_key order.  Sorting a live set per recursion node
    # (what the interpreted path does) would defeat the plan; instead a
    # sorted copy of each consulted bucket is cached and invalidated by
    # the mutation epoch, so enumeration between mutations sorts each
    # bucket at most once.

    def sorted_tuples(
        self, relation: Relation
    ) -> tuple[tuple[object, ...], ...]:
        entry = self._sorted.get(relation)
        if entry is None or entry[0] != self.epoch:
            data = tuple(
                sorted(self.relations[relation], key=element_sort_key)
            )
            self._sorted[relation] = (self.epoch, data)
            return data
        return entry[1]

    def sorted_tuples_with(
        self, relation: Relation, position: int, element: object
    ) -> tuple[tuple[object, ...], ...]:
        key = (relation, position, element)
        entry = self._sorted.get(key)
        if entry is None or entry[0] != self.epoch:
            data = tuple(
                sorted(
                    self.tuples_with(relation, position, element),
                    key=element_sort_key,
                )
            )
            self._sorted[key] = (self.epoch, data)
            return data
        return entry[1]

    # -- mutation ------------------------------------------------------

    def snapshot(self) -> Instance:
        return Instance(self.schema, self.domain, self.relations)

    def fact_count(self) -> int:
        return sum(len(tuples) for tuples in self.relations.values())

    def add(self, relation: Relation, tup: tuple) -> bool:
        self.domain.update(tup)
        tuples = self.relations[relation]
        if tup in tuples:
            return False
        tuples.add(tup)
        self.epoch += 1
        buckets = self._index[relation]
        stats = self._stats[relation]
        stats.rows += 1
        for pos, elem in enumerate(tup):
            bucket = buckets.get((pos, elem))
            if bucket is None:
                buckets[pos, elem] = {tup}
                stats.distinct[pos] += 1
                if not stats.max_bucket[pos]:
                    stats.max_bucket[pos] = 1
            else:
                bucket.add(tup)
                if len(bucket) > stats.max_bucket[pos]:
                    stats.max_bucket[pos] = len(bucket)
        self.log.append((relation, tup))
        return True

    def merge(self, keep: object, drop: object) -> None:
        """Replace ``drop`` by ``keep`` everywhere."""
        self.domain.discard(drop)
        self.domain.add(keep)
        for rel, tuples in self.relations.items():
            self.relations[rel] = {
                tuple(keep if elem == drop else elem for elem in tup)
                for tup in tuples
            }
        self.generation += 1
        self.epoch += 1
        self._rebuild()


_EMPTY_SET: frozenset = frozenset()


class _DeltaCursor:
    """Per-dependency position into a :class:`_State`'s fact log."""

    __slots__ = ("generation", "position")

    def __init__(self) -> None:
        self.generation = -1  # never evaluated: first sweep sees all
        self.position = 0


def _peak_rss_kb() -> int:
    """The process's peak resident set size in KB.

    Returns 0 when the platform exposes no ``resource`` module; a
    memory budget then never trips (graceful degradation — the chase
    still runs, just unbounded).  ``ru_maxrss`` is a high-water mark:
    once the process has ever exceeded a budget, every later check
    trips too, which is exactly the semantics a peak-RSS budget wants.
    """
    if _resource is None:  # pragma: no cover - non-POSIX
        return 0
    peak = int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        peak //= 1024
    return peak


def _unify_atom(atom: Atom, tup: tuple[object, ...]) -> dict[Var, object] | None:
    """Match one atom against one fact; ``None`` on clash."""
    partial: dict[Var, object] = {}
    for arg, elem in zip(atom.args, tup):
        if isinstance(arg, Const):
            if arg != elem:
                return None
        else:
            expected = partial.get(arg)
            if expected is None:
                partial[arg] = elem
            elif expected != elem:
                return None
    return partial


def _enumerate_triggers(
    state: _State | ColumnarState,
    dep: TGD,
    cursor: _DeltaCursor,
    strategy: str,
    plan: str | None,
    order: str | None,
) -> list[dict[Var, object]]:
    """The dependency's candidate triggers for this sweep, canonically
    ordered.

    ``naive`` re-enumerates every body match.  ``seminaive`` joins each
    body atom in turn against the delta (facts logged since the cursor)
    and the remaining atoms against the full state, so every returned
    trigger touches at least one new fact; triggers whose body is
    entirely old were already enumerated by an earlier sweep.  After an
    egd merge (generation bump) the delta is meaningless and a full
    enumeration is forced.
    """
    univ = dep.universal_variables
    if strategy == "naive" or cursor.generation != state.generation:
        triggers = list(
            all_extensions_of(dep.body, state, plan=plan, order=order)
        )
    else:
        triggers = []
        delta = state.log[cursor.position:]
        if dep.body and delta:
            by_rel: dict[Relation, list[tuple[object, ...]]] = {}
            for rel, tup in delta:
                by_rel.setdefault(rel, []).append(tup)
            seen: set[tuple[object, ...]] = set()
            for i, atom in enumerate(dep.body):
                new_tuples = by_rel.get(atom.relation)
                if not new_tuples:
                    continue
                rest = dep.body[:i] + dep.body[i + 1:]
                for tup in new_tuples:
                    partial = _unify_atom(atom, tup)
                    if partial is None:
                        continue
                    for trig in all_extensions_of(
                        rest, state, partial, plan=plan, order=order
                    ):
                        key = tuple(trig[v] for v in univ)
                        if key not in seen:
                            seen.add(key)
                            triggers.append(trig)
    cursor.generation = state.generation
    cursor.position = len(state.log)
    # Canonical firing order: by the frontier-to-be bindings.  Makes the
    # fired sequence (and hence null numbering) strategy-independent.
    triggers.sort(
        key=lambda trig: tuple(element_sort_key(trig[v]) for v in univ)
    )
    return triggers


def _delta_trigger_chunks(
    state: _State | ColumnarState,
    dep: TGD,
    cursor: _DeltaCursor,
    plan: str | None,
    order: str | None,
    chunk: int,
) -> Iterator[list[dict[Var, object]]]:
    """A memory-bounded semi-naive sweep: the dependency's triggers in
    canonically-sorted batches, at most one delta slice's worth
    materialized at a time.

    The unchunked sweep materializes *every* candidate trigger before
    firing any; at 10^6 delta facts that list dominates peak memory.
    Here the delta (the whole log on a first sweep or after an egd
    merge, when every fact counts as new) is consumed in slices of
    ``chunk`` facts: each slice's triggers are joined, deduplicated by
    binding key, sorted, and handed back for firing before the next
    slice is touched.  Every batch is fully materialized before the
    caller mutates the state, so no paused join enumeration ever
    observes a mutation.

    Firing between batches changes what later batches join against, so
    the global firing order differs from the unchunked sweep's single
    canonical sort.  For full-tgd dependencies the final instance is
    unchanged (the restricted chase of full tgds computes the unique
    least fixpoint under any fair order); with existential heads the
    run still yields a universal model, but its null numbering may
    differ from the unchunked run's.  Either way the result is a pure
    function of the inputs — batches are deterministic slices in
    deterministic order.  A binding whose body facts span two slices is
    enumerated in both batches; the engine's activity check (or
    oblivious done-set) keeps it from firing twice.
    """
    univ = dep.universal_variables
    start = 0 if cursor.generation != state.generation else cursor.position
    log_end = len(state.log)
    cursor.generation = state.generation
    cursor.position = log_end
    body = dep.body
    if not body:
        # A variable-free body matches at most once; no delta to slice.
        triggers = list(
            all_extensions_of(body, state, plan=plan, order=order)
        )
        if triggers:
            yield triggers
        return
    log = state.log
    sort_key = lambda trig: tuple(  # noqa: E731 - mirrors the plain path
        element_sort_key(trig[v]) for v in univ
    )
    for lo in range(start, log_end, chunk):
        batch: list[dict[Var, object]] = []
        seen: set[tuple[object, ...]] = set()
        for rel, tup in log[lo:lo + chunk]:
            for i, atom in enumerate(body):
                if atom.relation != rel:
                    continue
                partial = _unify_atom(atom, tup)
                if partial is None:
                    continue
                rest = body[:i] + body[i + 1:]
                for trig in all_extensions_of(
                    rest, state, partial, plan=plan, order=order
                ):
                    key = tuple(trig[v] for v in univ)
                    if key not in seen:
                        seen.add(key)
                        batch.append(trig)
        if batch:
            batch.sort(key=sort_key)
            yield batch


def _combined_schema(instance: Instance, deps: Sequence[Dependency]) -> Schema:
    return Schema.combined(
        (instance.schema, *(dep.schema for dep in deps))
    )


def _fire_tgd(
    state: _State | ColumnarState,
    tgd: TGD,
    trigger: dict[Var, object],
    nulls: FreshNulls,
    inventor: Inventor | None = None,
) -> tuple[int, int]:
    """Add the head image for a trigger; returns (facts_added, nulls_used)."""
    assignment = dict(trigger)
    created = 0
    if inventor is None:
        for var in tgd.existential_variables:
            assignment[var] = nulls()
            created += 1
    else:
        for var in tgd.existential_variables:
            assignment[var] = inventor(tgd, var, assignment)
            created += 1
    added = 0
    for atom in tgd.head:
        tup = tuple(assignment[arg] for arg in atom.args)  # type: ignore[index]
        if state.add(atom.relation, tup):
            added += 1
    return added, created


def _chase_egd(
    state: _State | ColumnarState,
    egd: EGD,
    plan: str | None,
    order: str | None,
) -> tuple[bool, bool]:
    """Apply one round of egd repairs; returns (changed, failed)."""
    if egd.is_trivial:
        return (False, False)
    changed = False
    while True:
        violation = None
        # Search the live state; we break out before mutating it.
        for trigger in all_extensions_of(
            egd.body, state, plan=plan, order=order
        ):
            if trigger[egd.lhs] != trigger[egd.rhs]:
                violation = (trigger[egd.lhs], trigger[egd.rhs])
                break
        if violation is None:
            return (changed, False)
        left, right = violation
        left_null = isinstance(left, Null)
        right_null = isinstance(right, Null)
        if not left_null and not right_null:
            return (changed, True)  # hard failure: two distinct constants
        if left_null and not right_null:
            state.merge(right, left)
        elif right_null and not left_null:
            state.merge(left, right)
        else:
            keep, drop = sorted((left, right), key=element_sort_key)
            state.merge(keep, drop)
        if TELEMETRY.enabled:
            TELEMETRY.count("chase.egd_merges")
        changed = True


def chase(
    instance: Instance,
    dependencies: Iterable[Dependency],
    *,
    variant: str = "restricted",
    strategy: str = "seminaive",
    max_rounds: int | None = None,
    max_facts: int | None = None,
    max_memory_mb: int | None = None,
    delta_chunk: int | None = None,
    certificate: str = "off",
    plan: str | None = None,
    backend: str = DEFAULT_BACKEND,
    order: str | None = None,
    inventor: Inventor | None = None,
) -> ChaseResult:
    """Chase ``instance`` with tgds and egds.

    ``max_rounds`` bounds the number of full sweeps over the dependency
    set; ``max_facts`` aborts when the instance grows past the bound.
    With both ``None``, the chase runs until a fixpoint (which may never
    come for non-terminating sets — prefer an explicit budget, or check
    weak acyclicity first).

    ``max_memory_mb`` is a peak-RSS budget: the run stops with
    ``StopReason.MEMORY`` as soon as the process's high-water resident
    set (``getrusage``'s ``ru_maxrss``) exceeds the bound — checked at
    round boundaries, per trigger batch, and every few hundred firings.
    Because it reads a process-wide high-water mark, the budget must
    exceed the RSS at call time to permit any work at all; a run whose
    budget never trips is bit-identical to an unbudgeted one.  On
    platforms without the ``resource`` module the budget never trips.

    ``delta_chunk`` bounds how many delta facts a semi-naive sweep
    joins at a time (see :func:`_delta_trigger_chunks`): instead of
    materializing every candidate trigger of a dependency before
    firing, triggers are produced and fired in per-slice batches, so
    peak memory scales with the chunk (times join fan-out) rather than
    the full delta.  Requires ``strategy="seminaive"``.  Full-tgd sets
    chase to the identical final instance; existential heads still
    yield a deterministic universal model, but null numbering may
    differ from the unchunked run's — pair it with full-tgd rule sets
    when bit-identity matters.

    ``certificate="auto"`` consults the memoized termination-certificate
    lattice (:func:`repro.analysis.guarantees_termination`): when a
    certificate guarantees that every chase sequence terminates, the
    round budget is dropped and the run goes to a definitive fixpoint
    (counted by the ``chase.certificate`` telemetry counter);
    ``max_facts`` is kept as a hard safety cap.  For uncertified sets
    the budgets apply unchanged.  The default ``"off"`` never consults
    the analysis.

    ``strategy`` selects the evaluation plan (``"seminaive"`` — delta
    joins over the indexed state, the default — or ``"naive"`` — full
    re-enumeration each round).  Both produce the same result; see the
    module docstring.

    ``plan`` selects the homomorphism-search backend for trigger
    enumeration, egd violation search, denial checks and restricted
    activity checks: ``"compiled"`` (memoized join plans with
    forward-checking — the default), ``"interpreted"`` (the reference
    dynamic-order interpreter), or ``None`` to defer to
    :data:`repro.homomorphisms.plans.DEFAULT_PLAN`.  Both modes
    produce bit-identical chase results.

    ``backend`` selects the fact-storage representation of the working
    state: ``"object"`` (frozen tuples over element objects — the
    reference) or ``"columnar"`` (interned integer IDs in per-position
    columns, executed at ID level by :mod:`repro.columnar`).  Like the
    strategy and plan pairs, the two backends are bit-identical in
    every observable — facts, null numbering, trigger order and the
    shared telemetry counters — which the differential grid in
    ``tests/test_differential_chase.py`` asserts.

    ``order`` selects the atom-ordering strategy of compiled join
    plans: ``"static"`` (the boundness/extent-rank reference order —
    bit-identical results across every other knob) or ``"adaptive"``
    (per-(plan, statistics) orders from the selectivity cost model in
    :mod:`repro.stats`, with a guard-bound fallback to static).
    Adaptive runs produce the *same* chase result for tgd-only
    dependency sets (trigger firing order is canonically sorted); with
    egds the result is isomorphic rather than equal, because the
    first-violation search is enumeration-order dependent.
    ``order="adaptive"`` requires ``plan="compiled"``.

    ``inventor`` overrides the invention of existential witnesses: a
    callable ``(tgd, variable, assignment) -> element`` consulted once
    per existential variable of each firing trigger, in place of fresh
    labeled nulls.  This is the monitored-chase seam of the semantic
    acyclicity analyses (:mod:`repro.analysis.semantic`): an inventor
    may raise :class:`ChaseMonitorStop` to abort the run, which the
    engine reports as a clean ``StopReason.MONITOR`` result.  The
    default ``None`` is the reference fresh-null path, bit-identical to
    every release before the seam existed.
    """
    deps = sorted(dependencies, key=str)
    if variant not in ("restricted", "oblivious"):
        raise ChaseError(f"unknown chase variant {variant!r}")
    if strategy not in STRATEGIES:
        raise ChaseError(f"unknown chase strategy {strategy!r}")
    if certificate not in ("off", "auto"):
        raise ChaseError(f"unknown certificate mode {certificate!r}")
    if plan is not None and plan not in PLAN_MODES:
        raise ChaseError(f"unknown join plan mode {plan!r}")
    if order is not None and order not in ORDER_MODES:
        raise ChaseError(f"unknown join order mode {order!r}")
    effective_order = order if order is not None else DEFAULT_ORDER
    effective_plan = plan if plan is not None else DEFAULT_PLAN
    if effective_order != "static" and effective_plan != "compiled":
        raise ChaseError(
            f"order={effective_order!r} requires plan='compiled' "
            f"(got plan={effective_plan!r})"
        )
    if backend not in BACKENDS:
        raise ChaseError(f"unknown chase backend {backend!r}")
    if max_memory_mb is not None and max_memory_mb < 1:
        raise ChaseError(
            f"max_memory_mb must be >= 1, got {max_memory_mb}"
        )
    if delta_chunk is not None:
        if delta_chunk < 1:
            raise ChaseError(
                f"delta_chunk must be >= 1, got {delta_chunk}"
            )
        if strategy != "seminaive":
            raise ChaseError(
                "delta_chunk requires strategy='seminaive' (the naive "
                "strategy has no delta to slice)"
            )
    if certificate == "auto" and max_rounds is not None:
        from ..analysis.certificates import guarantees_termination

        if guarantees_termination(deps):
            max_rounds = None
            if TELEMETRY.enabled:
                TELEMETRY.count("chase.certificate")
    if variant == "oblivious" and any(
        isinstance(d, (EGD, DenialConstraint)) for d in deps
    ):
        raise ChaseError("the oblivious chase supports tgds only")

    config: dict[str, object] = {
        "engine": "chase",
        "variant": variant,
        "strategy": strategy,
        "plan": effective_plan,
        "order": effective_order,
        "backend": backend,
        "certificate": certificate,
        "max_rounds": max_rounds,
        "max_facts": max_facts,
        "max_memory_mb": max_memory_mb,
        "delta_chunk": delta_chunk,
        "dependencies": len(deps),
    }
    if inventor is not None:
        config["monitored"] = True
    schema = _combined_schema(instance, deps)
    memory_kb = None if max_memory_mb is None else max_memory_mb * 1024
    if memory_kb is not None and _peak_rss_kb() > memory_kb:
        # Already over budget before any work: stop ahead of the
        # working-state bootstrap — cloning the kernel and building the
        # canonical fact log is itself a large allocation at streaming
        # scales, so the budget must gate it, not just the rounds.
        if TELEMETRY.enabled:
            TELEMETRY.count("chase.runs")
            TELEMETRY.count("chase.budget_exhausted")
            TELEMETRY.count("chase.memory_stops")
            peak = _peak_rss_kb()
            if peak:
                TELEMETRY.gauge("proc.peak_rss_kb", float(peak))
        if schema == instance.schema:
            snapshot = instance.with_backend(backend)
        else:
            snapshot = Instance._trusted(
                schema,
                instance.domain,
                {
                    rel: instance._relations.get(rel, _EMPTY_SET)
                    for rel in schema
                },
                backend,
            )
        return ChaseResult(
            snapshot, False, False, 0, 0, 0,
            stop_reason=StopReason.MEMORY,
            metrics=MetricsProbe().delta(), config=config,
        )
    state: _State | ColumnarState
    if backend == "columnar":
        # Imported lazily: repro.columnar itself imports chase-adjacent
        # modules, so the package only loads when the backend is used.
        from ..columnar.state import ColumnarState as _ColumnarState

        state = _ColumnarState(instance, schema)
    else:
        state = _State(instance, schema)
    cursors = [_DeltaCursor() for __ in deps]
    nulls = FreshNulls()
    fired = 0
    nulls_created = 0
    rounds = 0
    oblivious_done: set[tuple] = set()
    probe = MetricsProbe()

    with span(
        "chase", variant=variant, strategy=strategy, dependencies=len(deps)
    ) as sp:

        def finish(
            terminated: bool, failed: bool, reason: str
        ) -> ChaseResult:
            if TELEMETRY.enabled:
                TELEMETRY.count("chase.runs")
                if reason in (
                    StopReason.ROUND_BUDGET, StopReason.FACT_BUDGET,
                    StopReason.MEMORY,
                ):
                    TELEMETRY.count("chase.budget_exhausted")
                if reason == StopReason.MEMORY:
                    TELEMETRY.count("chase.memory_stops")
                peak = _peak_rss_kb()
                if peak:
                    TELEMETRY.gauge("proc.peak_rss_kb", float(peak))
            sp.set(stop_reason=reason, rounds=rounds, fired=fired)
            return ChaseResult(
                state.snapshot(), terminated, failed, rounds, fired,
                nulls_created, stop_reason=reason, metrics=probe.delta(),
                config=config,
            )

        while True:
            if max_rounds is not None and rounds >= max_rounds:
                return finish(False, False, StopReason.ROUND_BUDGET)
            if memory_kb is not None and _peak_rss_kb() > memory_kb:
                return finish(False, False, StopReason.MEMORY)
            rounds += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("chase.rounds")
            with span("chase.round", round=rounds):
                progressed = False
                round_triggers = 0
                for index, dep in enumerate(deps):
                    if isinstance(dep, DenialConstraint):
                        if find_extension(
                            dep.body, state, plan=plan, order=order
                        ) is not None:
                            return finish(
                                True, True, StopReason.DENIAL_VIOLATION
                            )
                        continue
                    if isinstance(dep, EGD):
                        changed, egd_failed = _chase_egd(
                            state, dep, plan, order
                        )
                        progressed = progressed or changed
                        if egd_failed:
                            return finish(
                                True, True, StopReason.EGD_FAILURE
                            )
                        continue
                    if delta_chunk is None:
                        batches: Iterable[list[dict[Var, object]]] = (
                            _enumerate_triggers(
                                state, dep, cursors[index], strategy,
                                plan, order,
                            ),
                        )
                    else:
                        batches = _delta_trigger_chunks(
                            state, dep, cursors[index], plan, order,
                            delta_chunk,
                        )
                    for triggers in batches:
                        if (
                            memory_kb is not None
                            and _peak_rss_kb() > memory_kb
                        ):
                            return finish(False, False, StopReason.MEMORY)
                        round_triggers += len(triggers)
                        if TELEMETRY.enabled and triggers:
                            TELEMETRY.count(
                                "chase.triggers_enumerated", len(triggers)
                            )
                        for trigger in triggers:
                            if variant == "oblivious":
                                key = (
                                    index,
                                    tuple(
                                        trigger[v]
                                        for v in dep.universal_variables
                                    ),
                                )
                                if key in oblivious_done:
                                    continue
                                oblivious_done.add(key)
                            else:
                                # Restricted: re-check activity against
                                # the live indexed state (no snapshot
                                # copies).
                                if satisfies_atoms(
                                    dep.head, state, trigger, plan=plan,
                                    order=order,
                                ):
                                    continue
                            try:
                                added, created = _fire_tgd(
                                    state, dep, trigger, nulls, inventor
                                )
                            except ChaseMonitorStop:
                                return finish(
                                    False, False, StopReason.MONITOR
                                )
                            fired += 1
                            nulls_created += created
                            if TELEMETRY.enabled:
                                TELEMETRY.count("chase.triggers_fired")
                                if created:
                                    TELEMETRY.count(
                                        "chase.nulls_created", created
                                    )
                                if added:
                                    TELEMETRY.count(
                                        "chase.facts_added", added
                                    )
                            progressed = (
                                progressed or added > 0 or created > 0
                            )
                            if (
                                max_facts is not None
                                and state.fact_count() > max_facts
                            ):
                                return finish(
                                    False, False, StopReason.FACT_BUDGET
                                )
                            if (
                                memory_kb is not None
                                and not fired % 512
                                and _peak_rss_kb() > memory_kb
                            ):
                                return finish(
                                    False, False, StopReason.MEMORY
                                )
                if TELEMETRY.enabled:
                    # Per-round distribution of enumerated tgd triggers:
                    # the semi-naive delta property shows up directly as
                    # a low p50 against the naive strategy's.
                    TELEMETRY.observe("chase.round_triggers", round_triggers)
            if not progressed:
                return finish(True, False, StopReason.FIXPOINT)
