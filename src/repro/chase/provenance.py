"""Chase provenance: which rule firing produced which fact.

`traced_chase` runs the restricted chase while recording one
:class:`Firing` per trigger, and :func:`explain` walks the trace
backwards to produce the derivation tree of a fact — the standard
debugging surface of a materialization engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from ..dependencies.denial import DenialConstraint
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..homomorphisms.search import (
    all_extensions_of,
    find_extension,
    satisfies_atoms,
)
from ..instances.instance import Instance
from ..lang.atoms import Fact
from ..lang.terms import FreshNulls, Var, element_sort_key
from .engine import (
    ChaseError,
    ChaseResult,
    StopReason,
    _State,
    _combined_schema,
    _fire_tgd,
)

__all__ = ["Firing", "TracedChaseResult", "traced_chase", "explain"]


@dataclass(frozen=True)
class Firing:
    """One rule application: the tgd, the trigger's body image, and the
    facts the head image added (facts already present are not listed)."""

    tgd: TGD
    premises: tuple[Fact, ...]
    conclusions: tuple[Fact, ...]

    def __str__(self) -> str:
        premises = ", ".join(str(f) for f in self.premises) or "(empty body)"
        conclusions = ", ".join(str(f) for f in self.conclusions)
        return f"{premises}  ⊢[{self.tgd}]  {conclusions}"


@dataclass(frozen=True)
class TracedChaseResult:
    """A chase result plus its firing log, in order."""

    result: ChaseResult
    trace: tuple[Firing, ...]

    @property
    def instance(self) -> Instance:
        return self.result.instance

    def producers(self, fact: Fact) -> tuple[Firing, ...]:
        """All firings that introduced the fact."""
        return tuple(
            firing for firing in self.trace if fact in firing.conclusions
        )


def traced_chase(
    instance: Instance,
    dependencies: Iterable[Union[TGD, EGD, DenialConstraint]],
    *,
    max_rounds: int | None = None,
) -> TracedChaseResult:
    """The restricted chase with a firing log.

    Provenance is only meaningful while element identity is stable, so
    egds (which merge elements) are rejected; use :func:`repro.chase.chase`
    when egds are involved.
    """
    deps = sorted(dependencies, key=str)
    if any(isinstance(d, EGD) for d in deps):
        raise ChaseError("traced_chase supports tgds and dcs only")

    schema = _combined_schema(instance, deps)
    state = _State(instance, schema)
    nulls = FreshNulls()
    trace: list[Firing] = []
    rounds = 0
    fired = 0
    nulls_created = 0

    while True:
        if max_rounds is not None and rounds >= max_rounds:
            return TracedChaseResult(
                ChaseResult(
                    state.snapshot(), False, False, rounds, fired,
                    nulls_created, stop_reason=StopReason.ROUND_BUDGET,
                ),
                tuple(trace),
            )
        rounds += 1
        progressed = False
        for dep in deps:
            if isinstance(dep, DenialConstraint):
                if find_extension(dep.body, state) is not None:
                    return TracedChaseResult(
                        ChaseResult(
                            state.snapshot(), True, True, rounds, fired,
                            nulls_created,
                            stop_reason=StopReason.DENIAL_VIOLATION,
                        ),
                        tuple(trace),
                    )
                continue
            univ = dep.universal_variables
            triggers = sorted(
                all_extensions_of(dep.body, state),
                key=lambda trig: tuple(
                    element_sort_key(trig[v]) for v in univ
                ),
            )
            for trigger in triggers:
                # Activity re-check against the live indexed state — the
                # engine's canonical order, so traces match chase() runs.
                if satisfies_atoms(dep.head, state, trigger):
                    continue
                before = {
                    rel: set(tuples)
                    for rel, tuples in state.relations.items()
                }
                added, created = _fire_tgd(state, dep, trigger, nulls)
                fired += 1
                nulls_created += created
                progressed = progressed or added > 0 or created > 0
                premises = tuple(
                    sorted(atom.to_fact(trigger) for atom in dep.body)
                )
                conclusions = tuple(
                    sorted(
                        Fact(rel, tup)
                        for rel, tuples in state.relations.items()
                        for tup in tuples - before[rel]
                    )
                )
                if conclusions:
                    trace.append(Firing(dep, premises, conclusions))
        if not progressed:
            return TracedChaseResult(
                ChaseResult(
                    state.snapshot(), True, False, rounds, fired,
                    nulls_created, stop_reason=StopReason.FIXPOINT,
                ),
                tuple(trace),
            )


def explain(
    traced: TracedChaseResult,
    fact: Fact,
    *,
    max_depth: int = 20,
) -> list[str]:
    """A textual derivation of the fact, back to database facts.

    Each line is ``indent fact  [rule or 'database']``; shared premises
    are expanded once per occurrence up to ``max_depth``.
    """
    lines: list[str] = []

    def walk(current: Fact, depth: int) -> None:
        indent = "  " * depth
        producers = traced.producers(current)
        if not producers:
            lines.append(f"{indent}{current}  [database]")
            return
        firing = producers[0]
        lines.append(f"{indent}{current}  [{firing.tgd}]")
        if depth >= max_depth:
            lines.append(f"{indent}  ...")
            return
        for premise in firing.premises:
            walk(premise, depth + 1)

    if not traced.instance.has_fact(fact):
        raise ValueError(f"{fact} does not hold in the chased instance")
    walk(fact, 0)
    return lines
