"""Translating DL TBoxes into dependencies over unary/binary schemas.

Concept names become unary predicates, role names binary ones:

    A ⊑ B            A(x) → B(x)                       (linear, full)
    ∃R ⊑ A           R(x, y) → A(x)                    (linear, full)
    ∃R⁻ ⊑ A          R(y, x) → A(x)                    (linear, full)
    A ⊑ ∃R           A(x) → ∃z R(x, z)                 (linear)
    A ⊑ ∃R.B         A(x) → ∃z (R(x, z) ∧ B(z))        (linear)
    A ⊓ B ⊑ C        A(x), B(x) → C(x)                 (guarded, not linear*)
    R ⊑ S            R(x, y) → S(x, y)                 (linear, full)
    A ⊓ B ⊑ ⊥        A(x), B(x) → ⊥                    (denial constraint)
    (funct R)        R(x, y), R(x, z) → y = z          (egd)

(*) the conjunction rule is the one EL feature that leaves the linear
class — exactly the Σ_G shape of the paper's Section 9.1 separation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from ..dependencies.denial import DenialConstraint
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..instances.instance import Instance
from ..lang.atoms import Atom, Fact
from ..lang.schema import Relation, Schema
from ..lang.terms import Const, Var
from .syntax import (
    And,
    AtomicConcept,
    Axiom,
    Concept,
    ConceptInclusion,
    Disjointness,
    DLError,
    Exists,
    FunctionalRole,
    Role,
    RoleInclusion,
)

__all__ = ["TBox", "translate_axiom", "translate_tbox", "abox_instance"]

Dependency = Union[TGD, EGD, DenialConstraint]

_X = Var("x")
_Y = Var("y")
_Z = Var("z")


def _concept_relation(concept: AtomicConcept) -> Relation:
    return Relation(concept.name, 1)


def _role_relation(role: Role) -> Relation:
    return Relation(role.name, 2)


def _role_atom(role: Role, subject: Var, target: Var) -> Atom:
    if role.inverted:
        subject, target = target, subject
    return Atom(_role_relation(role), (subject, target))


def _lhs_atoms(concept: Concept) -> tuple[Atom, ...]:
    """Body atoms for a left-hand-side concept, with ``x`` the instance
    variable."""
    if isinstance(concept, AtomicConcept):
        return (Atom(_concept_relation(concept), (_X,)),)
    if isinstance(concept, Exists):
        if concept.filler is not None:
            return (
                _role_atom(concept.role, _X, _Y),
                Atom(_concept_relation(concept.filler), (_Y,)),
            )
        return (_role_atom(concept.role, _X, _Y),)
    if isinstance(concept, And):
        return (
            Atom(_concept_relation(concept.left), (_X,)),
            Atom(_concept_relation(concept.right), (_X,)),
        )
    raise DLError(f"unsupported LHS concept {concept}")


def _rhs_atoms(concept: Concept) -> tuple[Atom, ...]:
    """Head atoms for a right-hand-side concept (``x`` again)."""
    if isinstance(concept, AtomicConcept):
        return (Atom(_concept_relation(concept), (_X,)),)
    if isinstance(concept, Exists):
        atoms = [_role_atom(concept.role, _X, _Z)]
        if concept.filler is not None:
            atoms.append(Atom(_concept_relation(concept.filler), (_Z,)))
        return tuple(atoms)
    raise DLError(f"unsupported RHS concept {concept} (no ⊓ on the right)")


def translate_axiom(axiom: Axiom) -> Dependency:
    """One axiom → one dependency."""
    if isinstance(axiom, ConceptInclusion):
        return TGD(_lhs_atoms(axiom.lhs), _rhs_atoms(axiom.rhs))
    if isinstance(axiom, RoleInclusion):
        return TGD(
            (_role_atom(axiom.lhs, _X, _Y),),
            (_role_atom(axiom.rhs, _X, _Y),),
        )
    if isinstance(axiom, Disjointness):
        return DenialConstraint(
            (
                Atom(_concept_relation(axiom.left), (_X,)),
                Atom(_concept_relation(axiom.right), (_X,)),
            )
        )
    if isinstance(axiom, FunctionalRole):
        return EGD(
            (
                _role_atom(axiom.role, _X, _Y),
                _role_atom(axiom.role, _X, _Z),
            ),
            _Y,
            _Z,
        )
    raise DLError(f"unsupported axiom {axiom!r}")


@dataclass(frozen=True)
class TBox:
    """A DL TBox and its relational translation."""

    axioms: tuple[Axiom, ...]

    def __init__(self, axioms: Iterable[Axiom]):
        object.__setattr__(self, "axioms", tuple(axioms))

    def dependencies(self) -> tuple[Dependency, ...]:
        return tuple(translate_axiom(a) for a in self.axioms)

    def tgds(self) -> tuple[TGD, ...]:
        return tuple(
            d for d in self.dependencies() if isinstance(d, TGD)
        )

    def schema(self) -> Schema:
        return Schema.combined(
            dep.schema for dep in self.dependencies()
        )

    def is_dl_lite(self) -> bool:
        """No ⊓ on any left-hand side — then every tgd is linear."""
        return all(
            not (
                isinstance(a, ConceptInclusion) and isinstance(a.lhs, And)
            )
            for a in self.axioms
        )

    def __str__(self) -> str:
        return "\n".join(str(a) for a in self.axioms)


def translate_tbox(axioms: Iterable[Axiom]) -> tuple[Dependency, ...]:
    return TBox(axioms).dependencies()


def abox_instance(
    assertions: Iterable[tuple], schema: Schema | None = None
) -> Instance:
    """Build a database from ABox assertions.

    Assertions are ``("A", "ind")`` for concept membership and
    ``("R", "ind1", "ind2")`` for role membership.
    """
    facts = []
    for assertion in assertions:
        name, *individuals = assertion
        if len(individuals) == 1:
            rel = Relation(name, 1)
        elif len(individuals) == 2:
            rel = Relation(name, 2)
        else:
            raise DLError(f"malformed assertion {assertion!r}")
        facts.append(Fact(rel, tuple(Const(str(i)) for i in individuals)))
    if schema is None:
        schema = Schema(fact.relation for fact in facts)
    return Instance.from_facts(schema, facts)
