"""Description-logic front-end: DL-Lite/EL TBoxes as tgd ontologies."""

from .syntax import (
    And,
    AtomicConcept,
    Axiom,
    Concept,
    ConceptInclusion,
    Disjointness,
    DLError,
    Exists,
    FunctionalRole,
    Role,
    RoleInclusion,
)
from .translate import TBox, abox_instance, translate_axiom, translate_tbox

__all__ = [
    "And", "AtomicConcept", "Axiom", "Concept", "ConceptInclusion",
    "Disjointness", "DLError", "Exists", "FunctionalRole", "Role",
    "RoleInclusion",
    "TBox", "abox_instance", "translate_axiom", "translate_tbox",
]
