"""Description-logic syntax (a DL-Lite_R / EL-flavoured fragment).

Section 1 of the paper: "many axioms used in description logics can be
expressed as tgds or egds over relational schemas consisting of unary
and binary predicates".  This package makes that bridge executable: a
small TBox language whose translation (see
:mod:`repro.dl.translate`) lands exactly in the tgd classes the paper
studies — DL-Lite-style axioms become *linear* tgds, EL-style
conjunctions become *guarded* ones, disjointness becomes a denial
constraint, and functionality an egd.

Concepts::

    A                      atomic(A)
    ∃R                     Exists(R)           (some R-successor)
    ∃R⁻                    Exists(R.inverse()) (some R-predecessor)
    ∃R.A                   Exists(R, A)        (qualified)
    A ⊓ B                  And(A, B)           (left-hand sides only)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "Role",
    "AtomicConcept",
    "Exists",
    "And",
    "Concept",
    "ConceptInclusion",
    "RoleInclusion",
    "Disjointness",
    "FunctionalRole",
    "Axiom",
    "DLError",
]


class DLError(ValueError):
    """Raised for axioms outside the translatable fragment."""


@dataclass(frozen=True)
class Role:
    """A role name, possibly inverted (``R⁻``)."""

    name: str
    inverted: bool = False

    def inverse(self) -> "Role":
        return Role(self.name, not self.inverted)

    def __str__(self) -> str:
        return f"{self.name}-" if self.inverted else self.name


@dataclass(frozen=True)
class AtomicConcept:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Exists:
    """``∃R`` (unqualified) or ``∃R.C`` (qualified) existential."""

    role: Role
    filler: "AtomicConcept | None" = None

    def __str__(self) -> str:
        if self.filler is None:
            return f"∃{self.role}"
        return f"∃{self.role}.{self.filler}"


@dataclass(frozen=True)
class And:
    """``A ⊓ B`` — conjunction of atomic concepts (LHS only)."""

    left: AtomicConcept
    right: AtomicConcept

    def __str__(self) -> str:
        return f"({self.left} ⊓ {self.right})"


Concept = Union[AtomicConcept, Exists, And]


@dataclass(frozen=True)
class ConceptInclusion:
    """``C ⊑ D``.

    Supported shapes (each translating to a single tgd):

    * LHS: atomic, ∃R, ∃R⁻, A ⊓ B;
    * RHS: atomic, ∃R, ∃R⁻, ∃R.A, ∃R⁻.A.
    """

    lhs: Concept
    rhs: Concept

    def __str__(self) -> str:
        return f"{self.lhs} ⊑ {self.rhs}"


@dataclass(frozen=True)
class RoleInclusion:
    """``R ⊑ S`` (either side possibly inverted)."""

    lhs: Role
    rhs: Role

    def __str__(self) -> str:
        return f"{self.lhs} ⊑ {self.rhs}"


@dataclass(frozen=True)
class Disjointness:
    """``A ⊓ B ⊑ ⊥`` — translated to a denial constraint."""

    left: AtomicConcept
    right: AtomicConcept

    def __str__(self) -> str:
        return f"{self.left} ⊓ {self.right} ⊑ ⊥"


@dataclass(frozen=True)
class FunctionalRole:
    """``(funct R)`` — translated to an egd."""

    role: Role

    def __str__(self) -> str:
        return f"(funct {self.role})"


Axiom = Union[ConceptInclusion, RoleInclusion, Disjointness, FunctionalRole]
