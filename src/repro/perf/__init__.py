"""repro.perf — the performance-trajectory harness behind ``repro bench``.

The observability layer (:mod:`repro.telemetry`) answers *what did this
run do*; this package answers *is the codebase getting faster or
slower* — across commits, machines, and configuration changes:

* :mod:`~repro.perf.families` — a registry of named, deterministic
  benchmark workloads (chase fixpoints, rewrite searches, cold
  entailment batteries) sized for CI;
* :mod:`~repro.perf.harness` — runs a family under counters+histogram
  telemetry with cold caches every repeat and freezes the measurement
  into a schema-versioned ``BENCH_<family>.json`` trajectory file:
  environment fingerprint, per-repeat wall times, exact operation
  counters, distribution snapshots;
* :mod:`~repro.perf.compare` — regression gating between two trajectory
  files.  Wall-time is compared only between identical environment
  fingerprints (a committed baseline from another machine still gates
  the *deterministic* metrics); plan-quality counters — index probes,
  backtracks, triggers enumerated, entailment calls — are compared
  always, because a plan regression shows up there before it shows up
  in seconds.

``python -m repro bench`` is the CLI entry point; see EXPERIMENTS.md
for the trajectory methodology.
"""

from .compare import (
    TRACKED_COUNTERS,
    Regression,
    apply_injection,
    compare_results,
    parse_injection,
    render_regressions,
)
from .families import (
    FAMILIES,
    BenchFamily,
    march_instance,
    resolve_families,
    run_march,
    run_stream,
)
from .fingerprint import environment_fingerprint
from .harness import (
    BENCH_SCHEMA,
    BenchResult,
    MissingBaselineError,
    bench_filename,
    load_baseline,
    run_family,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchFamily",
    "BenchResult",
    "FAMILIES",
    "MissingBaselineError",
    "Regression",
    "TRACKED_COUNTERS",
    "apply_injection",
    "bench_filename",
    "compare_results",
    "environment_fingerprint",
    "load_baseline",
    "march_instance",
    "parse_injection",
    "render_regressions",
    "resolve_families",
    "run_family",
    "run_march",
    "run_stream",
]
