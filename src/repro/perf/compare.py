"""Regression gating between two trajectory measurements.

Two axes, deliberately independent:

* **Wall time** — ``best_seconds`` (minimum over repeats: the least
  noise-contaminated statistic) compared only when the two
  measurements' environment fingerprints are *identical*.  A committed
  baseline replayed on a different machine silently skips this gate
  rather than raising false alarms; the CI self-test records and
  compares within one job, so the wall gate is exercised there.
* **Plan quality** — the :data:`TRACKED_COUNTERS` operation counts
  (index probes, backtracks, triggers enumerated, entailment calls,
  candidates considered).  These are deterministic under the harness's
  cold-cache protocol and machine-independent, so they gate across any
  fingerprint pair — and they catch a join-plan or pruning regression
  even when the machine got *faster*.

``--inject`` support (:func:`parse_injection` / :func:`apply_injection`)
exists so CI can prove the gate actually trips: scale the current
measurement synthetically and assert a non-zero exit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .harness import BenchResult

__all__ = [
    "TRACKED_COUNTERS",
    "Regression",
    "apply_injection",
    "compare_results",
    "parse_injection",
    "render_regressions",
]

# Counters whose growth means the engines are doing more work per unit
# of semantics — the machine-independent regression signal.
TRACKED_COUNTERS = (
    "hom.index_probes",
    "hom.backtracks",
    "hom.forward_prunes",
    "columnar.row_probes",
    "chase.rounds",
    "chase.triggers_enumerated",
    "entailment.calls",
    "search.candidates",
    "enumeration.candidates",
    # Adaptive-ordering quality: both are 0 on well-estimated pinned
    # workloads, and the from-zero rule below makes that a hard gate —
    # a cost-model change that starts tripping the guard bound or
    # mispredicting fan-outs on a baselined family is a regression even
    # though the ratio against 0 is undefined.
    "plan.guard_fallbacks",
    "plan.mispredictions",
    # Streaming ingestion volume: facts consumed and batches formed are
    # pure functions of the family's pinned spec and batch size.  A
    # dedup or batching change that re-ingests rows (or silently drops
    # the batched path back to per-fact adds) moves these before it
    # moves wall time, and the from-zero rule gates a family that
    # starts ingesting on a baseline that never did.
    "ingest.facts",
    "ingest.batches",
)

DEFAULT_WALL_THRESHOLD = 0.20
DEFAULT_COUNTER_THRESHOLD = 0.20


@dataclass(frozen=True)
class Regression:
    """One tripped gate."""

    family: str
    metric: str  # "wall" or a counter name
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        if self.metric == "wall":
            return (
                f"{self.family}: wall {self.baseline * 1e3:.1f}ms -> "
                f"{self.current * 1e3:.1f}ms (x{self.ratio:.2f})"
            )
        return (
            f"{self.family}: {self.metric} {int(self.baseline)} -> "
            f"{int(self.current)} (x{self.ratio:.2f})"
        )


def compare_results(
    baseline: BenchResult,
    current: BenchResult,
    *,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    counter_threshold: float = DEFAULT_COUNTER_THRESHOLD,
) -> list[Regression]:
    """Every gate the current measurement trips against the baseline."""
    if baseline.family != current.family:
        raise ValueError(
            f"family mismatch: baseline {baseline.family!r} vs "
            f"current {current.family!r}"
        )
    regressions: list[Regression] = []
    if dict(baseline.fingerprint) == dict(current.fingerprint):
        base_wall = baseline.best_seconds
        cur_wall = current.best_seconds
        if base_wall > 0 and cur_wall > base_wall * (1 + wall_threshold):
            regressions.append(
                Regression(current.family, "wall", base_wall, cur_wall)
            )
    for name in TRACKED_COUNTERS:
        base = baseline.counters.get(name, 0)
        cur = current.counters.get(name, 0)
        grew_from_zero = base == 0 and cur > 0
        if grew_from_zero or (
            base > 0 and cur > base * (1 + counter_threshold)
        ):
            regressions.append(
                Regression(current.family, name, float(base), float(cur))
            )
    return regressions


def render_regressions(regressions: list[Regression]) -> str:
    if not regressions:
        return "no regressions"
    lines = [f"{len(regressions)} regression(s):"]
    lines.extend(f"  {reg}" for reg in regressions)
    return "\n".join(lines)


def parse_injection(spec: str | None) -> dict[str, float]:
    """Parse ``"wall=1.5,probes=1.3"`` into scale factors.

    Keys: ``wall`` (scales every wall-time sample) and ``probes``
    (scales every tracked counter).  Used by the CI self-test to verify
    the gate trips; never applied to recorded artifacts.
    """
    if not spec:
        return {}
    factors: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in ("wall", "probes"):
            raise ValueError(
                f"unknown injection key {key!r} (known: wall, probes)"
            )
        try:
            factors[key] = float(value)
        except ValueError:
            raise ValueError(
                f"injection factor for {key!r} must be a number, "
                f"got {value!r}"
            ) from None
    return factors


def apply_injection(
    result: BenchResult, factors: dict[str, float]
) -> BenchResult:
    """A copy of ``result`` with synthetic regressions applied."""
    if not factors:
        return result
    updated = result
    wall = factors.get("wall")
    if wall is not None:
        updated = replace(
            updated,
            wall_seconds=tuple(w * wall for w in updated.wall_seconds),
        )
    probes = factors.get("probes")
    if probes is not None:
        counters = dict(updated.counters)
        for name in TRACKED_COUNTERS:
            if name in counters:
                counters[name] = int(counters[name] * probes)
        updated = replace(updated, counters=counters)
    return updated
