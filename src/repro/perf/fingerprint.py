"""Environment fingerprints for trajectory files.

Wall-clock numbers only mean something relative to the machine and
interpreter that produced them, so every ``BENCH_*.json`` embeds a
fingerprint and :mod:`repro.perf.compare` gates wall-time regressions
on fingerprint *equality*: a committed baseline from a different
machine still gates the deterministic counters, while a same-job
baseline (the CI self-test) gates seconds too.

``node`` is deliberately included — two CI runners with identical
platform strings can still differ wildly in sustained clock speed, and
a false wall-time alarm is worse than a skipped one.
"""

from __future__ import annotations

import platform

__all__ = ["environment_fingerprint"]


def environment_fingerprint() -> dict[str, str]:
    """The identity under which wall-clock comparisons are valid."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "node": platform.node(),
    }
