"""Run benchmark families and freeze measurements into trajectory files.

One measurement = ``repeats`` cold runs of a family under counter and
histogram telemetry (spans stay off — span bookkeeping would show up in
the timings).  Before every repeat the engine memo caches are cleared,
so each repeat performs identical work and the recorded counters are a
pure function of the codebase; the repeats differ only in wall time.

The artifact is ``BENCH_<family>.json`` — schema-versioned, embedding
the environment fingerprint, the full list of per-repeat wall times
(never just an average: the *minimum* is the comparison statistic, the
spread is kept for honesty), the counter totals of one repeat, and the
histogram snapshots.  A sequence of these files over commits is a
performance trajectory; :mod:`repro.perf.compare` gates a pair of them.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..telemetry import TELEMETRY, Histogram
from .families import BenchFamily, clear_engine_caches
from .fingerprint import environment_fingerprint

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "MissingBaselineError",
    "bench_filename",
    "load_baseline",
    "run_family",
]

BENCH_SCHEMA = "repro/bench@1"


def bench_filename(family_name: str) -> str:
    return f"BENCH_{family_name}.json"


class MissingBaselineError(ValueError):
    """A baseline directory has no trajectory file for a family.

    Raised (instead of surfacing as a ``FileNotFoundError`` or a bare
    ``KeyError`` later in the comparison) so callers can tell "this
    family was never baselined" apart from "the baseline file is
    corrupt" and report which file to regenerate."""

    def __init__(self, directory: str | Path, family: str) -> None:
        self.family = family
        self.path = Path(directory) / bench_filename(family)
        super().__init__(
            f"no baseline for family {family!r}: {self.path} does not "
            f"exist (record one with "
            f"'repro bench --families {family} --json --out "
            f"{directory}')"
        )


def load_baseline(directory: str | Path, family: str) -> "BenchResult":
    """The committed baseline measurement of ``family`` in ``directory``.

    Raises :class:`MissingBaselineError` when the family has no
    ``BENCH_<family>.json`` there; other load failures (unreadable
    file, schema mismatch) propagate as ``OSError`` / ``ValueError``."""
    path = Path(directory) / bench_filename(family)
    if not path.exists():
        raise MissingBaselineError(directory, family)
    return BenchResult.load(path)


@dataclass(frozen=True)
class BenchResult:
    """One frozen measurement of one family."""

    family: str
    wall_seconds: tuple[float, ...]
    counters: Mapping[str, int]
    histograms: Mapping[str, Histogram] = field(default_factory=dict)
    fingerprint: Mapping[str, str] = field(
        default_factory=environment_fingerprint
    )
    schema: str = BENCH_SCHEMA

    @property
    def best_seconds(self) -> float:
        return min(self.wall_seconds)

    @property
    def mean_seconds(self) -> float:
        return sum(self.wall_seconds) / len(self.wall_seconds)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "family": self.family,
            "fingerprint": dict(self.fingerprint),
            "repeats": len(self.wall_seconds),
            "wall_seconds": list(self.wall_seconds),
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def write(self, directory: str | Path) -> Path:
        path = Path(directory) / bench_filename(self.family)
        path.write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchResult":
        schema = data.get("schema")
        if schema != BENCH_SCHEMA:
            raise ValueError(
                f"unsupported bench schema {schema!r} "
                f"(expected {BENCH_SCHEMA!r})"
            )
        walls = tuple(float(v) for v in data.get("wall_seconds", ()))
        if not walls:
            raise ValueError("bench file has no wall_seconds samples")
        return cls(
            family=str(data.get("family", "")),
            wall_seconds=walls,
            counters={
                str(k): int(v) for k, v in data.get("counters", {}).items()
            },
            histograms={
                str(k): Histogram.from_dict(v)
                for k, v in data.get("histograms", {}).items()
            },
            fingerprint={
                str(k): str(v)
                for k, v in data.get("fingerprint", {}).items()
            },
            schema=str(schema),
        )

    @classmethod
    def load(cls, path: str | Path) -> "BenchResult":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def run_family(family: BenchFamily, *, repeats: int = 3) -> BenchResult:
    """Measure one family: ``repeats`` cold, telemetried runs.

    The telemetry singleton is reset around the measurement; callers
    holding sinks open (e.g. a ``--profile`` session) should not invoke
    the harness mid-run.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    walls: list[float] = []
    counters: dict[str, int] = {}
    histograms: dict[str, Histogram] = {}
    for repeat in range(repeats):
        clear_engine_caches()
        TELEMETRY.disable()
        TELEMETRY.reset()
        TELEMETRY.enable(spans=False)
        started = time.perf_counter()
        family.runner()
        walls.append(time.perf_counter() - started)
        if repeat == 0:
            # Caches are cleared per repeat, so every repeat records the
            # same operation counts; keep the first (cold-start truth).
            counters = TELEMETRY.snapshot()
            histograms = TELEMETRY.histogram_snapshot()
        TELEMETRY.disable()
        TELEMETRY.reset()
    return BenchResult(
        family=family.name,
        wall_seconds=tuple(walls),
        counters=counters,
        histograms=histograms,
    )
