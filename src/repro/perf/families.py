"""The benchmark family registry.

A family is a named, deterministic workload exercising one engine path
end to end.  Requirements for membership:

* **deterministic operation counts** — with caches cleared (the harness
  does this before every repeat), the counter/histogram snapshot of a
  run is a pure function of the codebase, so two commits can be
  compared exactly;
* **CI-sized** — every family finishes in well under a second on a
  laptop; trend detection wants many cheap samples, not one slow one;
* **pinned inputs** — the scenarios are written out literally here and
  never derived from anything environmental.

The pinned rewrite scenarios are the paper's own: Example 9 / Example 10
(guarded → linear over a unary chain schema) and the Example 5.2
composition rule (full-tgd rewriting), the same inputs
``tests/test_rewrite_regression.py`` locks semantically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..analysis.certificates import clear_certificate_cache
from ..analysis.depgraph import clear_depgraph_cache
from ..analysis.semantic import clear_semantic_cache
from ..chase.engine import chase
from ..columnar import execute as _columnar_execute  # noqa: F401
from ..dependencies.classes import TGDClass
from ..entailment.cache import ENTAILMENT_CACHE
from ..entailment.implication import entails
from ..homomorphisms.plans import PLAN_CACHE, clear_order_memo
from ..instances.instance import Instance
from ..lang.atoms import Fact
from ..lang.parser import parse_facts, parse_tgds
from ..lang.schema import Relation, Schema
from ..lang.terms import Const
from ..rewriting.rewrite import (
    frontier_guarded_to_guarded,
    guarded_to_linear,
    rewrite,
)
from ..workloads.factory import (
    WorkloadSpec,
    clear_workload_caches,
    dependencies_of,
    generate_rows,
    schema_of,
)

# The columnar executor (and its optional NumPy dependency) is imported
# at module load so no family's first repeat pays the import inside the
# timed region.

__all__ = ["BenchFamily", "FAMILIES", "MARCH_BUCKET", "MARCH_NODES",
           "MARCH_RULES", "MFA_BENCH_MFA_RULES", "MFA_BENCH_MSA_RULES",
           "SKEW_FILLER", "SKEW_HUB", "SKEW_NODES",
           "SKEW_RULES", "STREAM_SPEC", "clear_engine_caches",
           "march_instance", "resolve_families", "run_march", "run_skew",
           "run_stream", "skew_instance"]


def clear_engine_caches() -> None:
    """Cold-start every process-level memo the engines consult, so each
    benchmark repeat measures the same work."""
    ENTAILMENT_CACHE.clear()
    PLAN_CACHE.clear()
    clear_order_memo()
    clear_certificate_cache()
    clear_depgraph_cache()
    clear_semantic_cache()
    clear_workload_caches()


@dataclass(frozen=True)
class BenchFamily:
    """One registered workload: ``runner`` runs it once, end to end."""

    name: str
    description: str
    runner: Callable[[], None]
    smoke: bool = True  # part of the CI smoke subset


# ----------------------------------------------------------------------
# Pinned scenarios
# ----------------------------------------------------------------------

_UNARY3 = Schema.of(("R", 1), ("P", 1), ("T", 1))
_BINARY3 = Schema.of(("R", 2), ("S", 2), ("T", 2))

_E9_RULES = "R(x) -> P(x)\nR(x), P(x) -> T(x)"
_E10_RULES = "R(x) -> P(x)\nR(x), P(y) -> T(x)"
_COMPOSITION_RULE = "R(x, y), S(y, z) -> T(x, z)"

_CHASE_FULL_RULES = (
    "R(x, y) -> S(y, x)\n"
    "S(x, y), R(y, z) -> T(x, z)\n"
    "T(x, y), S(y, z) -> R(x, z)"
)
_CHASE_FULL_DATA = (
    "R(a, b). R(b, c). R(c, d). R(d, e). R(e, f). R(f, a)."
)

_CHASE_EXISTENTIAL_RULES = (
    "R(x, y) -> S(y, z)\n"          # z existential: invents nulls
    "S(x, y) -> T(x, x)\n"
    "T(x, y), R(x, w) -> S(w, x)"
)
_CHASE_EXISTENTIAL_DATA = "R(a, b). R(b, c). R(c, a)."


def _instance(schema: Schema, text: str) -> Instance:
    facts = parse_facts(text)
    return Instance.from_facts(schema, facts)


# The dense-chase "march" workload behind the chase-columnar family and
# the benchmarks/bench_columnar.py ablation.  A marker marches around a
# ring of MARCH_NODES nodes: for each node the 3-ary edge relation holds
# one "diagonal" successor row (positions 1 and 2 equal) buried in
# MARCH_BUCKET-1 distractor rows, so every naive re-enumeration scans
# large per-node buckets under a positional equality check — the pool
# shape the columnar executor vectorizes and the object executor walks
# row by row (re-sorting the bucket every epoch on top).

MARCH_NODES = 32
MARCH_BUCKET = 96
_MARCH_E = Relation("E", 3)
_MARCH_CUR = Relation("Cur", 1)
_MARCH_SCHEMA = Schema([_MARCH_E, _MARCH_CUR])
MARCH_RULES = "Cur(x), E(x, y, y) -> Cur(y)"


def march_instance(
    *,
    nodes: int = MARCH_NODES,
    bucket: int = MARCH_BUCKET,
    backend: str = "object",
) -> Instance:
    """The pinned march database (deterministic for fixed sizes)."""
    facts = [Fact(_MARCH_CUR, (Const("v000"),))]
    for i in range(nodes):
        here = Const(f"v{i:03d}")
        succ = Const(f"v{(i + 1) % nodes:03d}")
        facts.append(Fact(_MARCH_E, (here, succ, succ)))
        for j in range(bucket - 1):
            facts.append(
                Fact(
                    _MARCH_E,
                    (here, Const(f"a{i:03d}_{j:03d}"), Const(f"b{i:03d}_{j:03d}")),
                )
            )
    return Instance.from_facts(_MARCH_SCHEMA, facts).with_backend(backend)


def run_march(backend: str, *, nodes: int = MARCH_NODES,
              bucket: int = MARCH_BUCKET) -> None:
    """One full march chase on ``backend`` (naive strategy: every round
    re-enumerates every bucket — the dense re-scan shape)."""
    deps = parse_tgds(MARCH_RULES, _MARCH_SCHEMA)
    db = march_instance(nodes=nodes, bucket=bucket, backend=backend)
    if backend == "columnar":
        db.columnar_kernel()  # warm the kernel; the chase state clones it
    result = chase(
        db, deps, strategy="naive", backend=backend, max_rounds=2 * nodes
    )
    assert result.successful, "march family must reach a fixpoint"
    assert result.rounds == nodes, "march must visit every node once"


def _run_chase_columnar() -> None:
    run_march("columnar")


# The Zipf-skewed join workload behind the chase-skewed family and the
# benchmarks/bench_stats.py adaptive-vs-static ablation.  A cursor
# marches around a ring; six rules share the body
# ``Cur(x), B(x, y), C(x, y)``.  B's per-node buckets are Zipf-sized
# (the hub node holds SKEW_HUB distractor rows, node i holds
# ~SKEW_HUB/(i+1)) while C pairs every node with exactly one diagonal
# row — but C's extent is padded with SKEW_FILLER never-joining rows so
# it stays *larger* than B's.  The static order therefore tie-breaks
# the two 1-bound atoms toward B (smaller extent) and wades through the
# Zipf buckets, while the adaptive order reads the statistics — C's
# expected bucket is 1, B's is its skewed average — and probes C first,
# reducing each trigger enumeration to a membership check.

SKEW_NODES = 16
SKEW_HUB = 240
SKEW_FILLER = 1000
_SKEW_HEADS = 6
_SKEW_B = Relation("B", 2)
_SKEW_C = Relation("C", 2)
_SKEW_NEXT = Relation("Next", 2)
_SKEW_CUR = Relation("Cur", 1)
_SKEW_SCHEMA = Schema(
    [_SKEW_B, _SKEW_C, _SKEW_NEXT, _SKEW_CUR]
    + [Relation(f"D{k}", 1) for k in range(1, _SKEW_HEADS + 1)]
)
SKEW_RULES = "\n".join(
    [
        f"Cur(x), B(x, y), C(x, y) -> D{k}(y)"
        for k in range(1, _SKEW_HEADS + 1)
    ]
    + ["Cur(x), Next(x, y) -> Cur(y)"]
)


def skew_instance(
    *,
    nodes: int = SKEW_NODES,
    hub: int = SKEW_HUB,
    filler: int = SKEW_FILLER,
    backend: str = "object",
) -> Instance:
    """The pinned Zipf-skew database (deterministic for fixed sizes)."""
    facts = [Fact(_SKEW_CUR, (Const("v000"),))]
    for i in range(nodes):
        here = Const(f"v{i:03d}")
        diag = Const(f"c{i:03d}")
        facts.append(Fact(_SKEW_NEXT, (here, Const(f"v{(i + 1) % nodes:03d}"))))
        facts.append(Fact(_SKEW_B, (here, diag)))
        facts.append(Fact(_SKEW_C, (here, diag)))
        for j in range(max(1, hub // (i + 1)) - 1):
            facts.append(Fact(_SKEW_B, (here, Const(f"b{i:03d}_{j:03d}"))))
    for j in range(filler):
        facts.append(
            Fact(_SKEW_C, (Const(f"u{j:04d}"), Const(f"w{j:04d}")))
        )
    return Instance.from_facts(_SKEW_SCHEMA, facts).with_backend(backend)


def run_skew(order: str, *, nodes: int = SKEW_NODES, hub: int = SKEW_HUB,
             filler: int = SKEW_FILLER, backend: str = "object") -> None:
    """One full skew chase under ``order`` (naive strategy: every round
    re-enumerates every Zipf bucket the atom order walks into)."""
    deps = parse_tgds(SKEW_RULES, _SKEW_SCHEMA)
    db = skew_instance(nodes=nodes, hub=hub, filler=filler, backend=backend)
    if backend == "columnar":
        db.columnar_kernel()
    result = chase(
        db, deps, strategy="naive", plan="compiled", order=order,
        backend=backend, max_rounds=2 * nodes,
    )
    assert result.successful, "skew family must reach a fixpoint"
    # nodes - 1 marching rounds, one trailing round deriving the last
    # diagonal (the D rules precede the cursor rule in the sweep), one
    # fixpoint-detection round.
    assert result.rounds == nodes + 1, "skew cursor must visit every node"
    for k in range(1, _SKEW_HEADS + 1):
        derived = result.instance.tuples(f"D{k}")
        assert len(derived) == nodes, "every diagonal must be derived"


def _run_chase_skewed() -> None:
    run_skew("adaptive")


def _run_chase_full() -> None:
    deps = parse_tgds(_CHASE_FULL_RULES, _BINARY3)
    db = _instance(_BINARY3, _CHASE_FULL_DATA)
    result = chase(db, deps)
    assert result.successful, "chase-full family must reach a fixpoint"


def _run_chase_existential() -> None:
    deps = parse_tgds(_CHASE_EXISTENTIAL_RULES, _BINARY3)
    db = _instance(_BINARY3, _CHASE_EXISTENTIAL_DATA)
    result = chase(db, deps, max_rounds=32)
    assert result.rounds > 0


def _run_rewrite_linear() -> None:
    sigma = list(parse_tgds(_E9_RULES, _UNARY3))
    result = guarded_to_linear(sigma, schema=_UNARY3)
    assert result.status in ("success", "failure")


def _run_rewrite_guarded() -> None:
    # Example 10 (positive) plus the Section 9.1 separation witness
    # (a definitive failure): one success path, one ⊥ path.
    for rules in (_E10_RULES, "R(x), P(y) -> T(x)"):
        sigma = list(parse_tgds(rules, _UNARY3))
        result = frontier_guarded_to_guarded(sigma, schema=_UNARY3)
        assert result.status in ("success", "failure")


def _run_rewrite_full() -> None:
    sigma = list(parse_tgds(_COMPOSITION_RULE, _BINARY3))
    result = rewrite(
        sigma, TGDClass.FULL, schema=_BINARY3, max_body_atoms=2
    )
    assert result.status in ("success", "failure")


# The semantic-certificate workload behind the analysis-mfa family and
# the benchmarks/bench_analysis.py MFA ablation.  Two pinned sets that
# defeat every syntactic tier (WA/JA/SWA all see a place cycle) yet are
# chase-finite: the first is summarisable (MSA — its guard C never
# holds for summary constants), the second is certified only by the
# faithful chase (MFA — the summary model conflates f- and g-terms
# into a spurious cycle the faithful terms never realize).

_MFA_MSA_SCHEMA = Schema.of(("A", 1), ("R", 2), ("S", 2), ("C", 1))
MFA_BENCH_MSA_RULES = (
    "A(x) -> R(x, y)\n"
    "R(x, y) -> S(y, v)\n"
    "R(x, y), S(y, z), C(z) -> R(y, w)"
)
_MFA_ONLY_SCHEMA = Schema.of(
    ("A", 1), ("R", 2), ("I", 1), ("G", 1), ("T", 2)
)
MFA_BENCH_MFA_RULES = (
    "A(x) -> R(x, y)\n"
    "R(x, y), I(x) -> G(y)\n"
    "G(x) -> T(x, y)\n"
    "T(x, y), I(x) -> A(y)"
)


def _run_analysis_mfa() -> None:
    from ..analysis.certificates import Certificate, certificate_for

    msa_set = parse_tgds(MFA_BENCH_MSA_RULES, _MFA_MSA_SCHEMA)
    mfa_set = parse_tgds(MFA_BENCH_MFA_RULES, _MFA_ONLY_SCHEMA)
    msa = certificate_for(msa_set)
    assert (
        msa.certificate is Certificate.MODEL_SUMMARISING_ACYCLICITY
    ), "analysis-mfa: first set must be MSA-certified"
    mfa = certificate_for(mfa_set)
    assert (
        mfa.certificate is Certificate.MODEL_FAITHFUL_ACYCLICITY
    ), "analysis-mfa: second set must be MFA-certified"


# The streaming-ingestion workload behind the chase-stream family and
# the benchmarks/bench_workloads.py ablations.  A pinned factory spec is
# generated in memory, ingested through Instance.from_stream in small
# batches (exercising the columnar bulk-append fast path and the
# ingest.* telemetry), then chased with the rollup rules under a
# chunked delta sweep — the memory-bounded batching path, minus the
# machine-dependent RSS budget (ru_maxrss varies by host, so the bench
# family keeps its counters a pure function of the codebase by never
# passing max_memory_mb; the CI smoke job covers the budget trip).

STREAM_SPEC = WorkloadSpec(
    name="bench", seed=2021, facts=4000, levels=3, skew=1.0
)
_STREAM_BATCH = 512
_STREAM_CHUNK = 1024


def run_stream(
    backend: str, *, spec: WorkloadSpec = STREAM_SPEC
) -> None:
    """One streamed ingest + chunked chase on ``backend``."""
    deps = dependencies_of(spec)
    db = Instance.from_stream(
        generate_rows(spec),
        schema=schema_of(spec),
        backend=backend,
        batch_size=_STREAM_BATCH,
    )
    result = chase(
        db, deps, backend=backend,
        delta_chunk=_STREAM_CHUNK, max_rounds=8,
    )
    assert result.successful, "chase-stream family must reach a fixpoint"
    for k in range(spec.levels - 1):
        assert result.instance.tuples(f"A{k}"), "rollups must derive"


def _run_chase_stream() -> None:
    run_stream("columnar")


def _run_entails_cold() -> None:
    sigma = list(parse_tgds(_E9_RULES, _UNARY3))
    conclusions = parse_tgds(
        "R(x) -> T(x)\nP(x) -> T(x)\nT(x) -> R(x)\n"
        "P(x) -> R(x)\nT(x) -> P(x)\nR(x), P(x) -> T(x)",
        _UNARY3,
    )
    for conclusion in conclusions:
        entails(sigma, conclusion, cache=False)


FAMILIES: dict[str, BenchFamily] = {
    family.name: family
    for family in (
        BenchFamily(
            "chase-full",
            "full-tgd fixpoint over a 6-cycle (semi-naive deltas)",
            _run_chase_full,
        ),
        BenchFamily(
            "chase-existential",
            "null-inventing chase under a round budget",
            _run_chase_existential,
        ),
        BenchFamily(
            "rewrite-linear",
            "Algorithm 1 on Examples 9 and 10 (guarded → linear)",
            _run_rewrite_linear,
        ),
        BenchFamily(
            "rewrite-guarded",
            "Algorithm 2 on Example 9 (frontier-guarded → guarded)",
            _run_rewrite_guarded,
        ),
        BenchFamily(
            "rewrite-full",
            "full-tgd rewriting of the Example 5.2 composition rule",
            _run_rewrite_full,
            smoke=False,  # the largest family: kept out of CI smoke
        ),
        BenchFamily(
            "entails-cold",
            "cold chase-based entailment battery (cache disabled)",
            _run_entails_cold,
        ),
        BenchFamily(
            "chase-columnar",
            "dense-bucket march chase on the columnar backend "
            "(naive re-enumeration over vectorizable pools)",
            _run_chase_columnar,
        ),
        BenchFamily(
            "chase-skewed",
            "Zipf-skewed join chase under order=adaptive "
            "(statistics-driven atom ordering dodges the hub buckets)",
            _run_chase_skewed,
        ),
        BenchFamily(
            "chase-stream",
            "streamed factory ingest (batched columnar bulk-append) "
            "plus a chunked-delta rollup chase",
            _run_chase_stream,
        ),
        BenchFamily(
            "analysis-mfa",
            "semantic certificate lattice climb: monitored critical-"
            "instance chases certifying an MSA and an MFA-only set",
            _run_analysis_mfa,
        ),
    )
}


def resolve_families(
    selector: str | None, *, smoke_only: bool = False
) -> list[BenchFamily]:
    """``selector`` is a comma-separated family list, ``"all"``, or
    ``None`` (→ every family, or the smoke subset with
    ``smoke_only``)."""
    if selector and selector != "all":
        chosen = []
        for name in selector.split(","):
            name = name.strip()
            if name not in FAMILIES:
                known = ", ".join(sorted(FAMILIES))
                raise ValueError(
                    f"unknown bench family {name!r} (known: {known})"
                )
            chosen.append(FAMILIES[name])
        return chosen
    families = list(FAMILIES.values())
    if smoke_only:
        families = [family for family in families if family.smoke]
    return families
