"""Instances and their algebra."""

from .critical import (
    all_non_oblivious_duplicating_extensions,
    critical_instance,
    critical_instance_over,
    non_oblivious_duplicating_extension,
    oblivious_duplicating_extension,
)
from .enumeration import (
    all_extensions,
    all_instances,
    all_instances_up_to,
    count_instances,
    default_domain,
)
from .instance import Instance, InstanceError
from .io import (
    instance_from_json,
    instance_to_json,
    load_instance_csv,
    load_instance_json,
    save_instance_csv,
    save_instance_json,
)
from .neighbourhood import (
    induced_subinstances,
    m_neighbourhood,
    maximal_m_neighbourhood_members,
    subinstances_with_adom_at_most,
)
from .operations import (
    direct_product,
    direct_product_many,
    disjoint_union,
    intersection,
    rename_apart,
    union,
)
from .streaming import (
    DEFAULT_BATCH_ROWS,
    FactStream,
    FactStreamError,
    FactStreamWriter,
    instance_from_stream,
)

__all__ = [
    "Instance", "InstanceError",
    "DEFAULT_BATCH_ROWS", "FactStream", "FactStreamError",
    "FactStreamWriter", "instance_from_stream",
    "instance_from_json", "instance_to_json", "load_instance_csv",
    "load_instance_json", "save_instance_csv", "save_instance_json",
    "critical_instance", "critical_instance_over",
    "oblivious_duplicating_extension", "non_oblivious_duplicating_extension",
    "all_non_oblivious_duplicating_extensions",
    "all_extensions", "all_instances", "all_instances_up_to",
    "count_instances", "default_domain",
    "induced_subinstances", "m_neighbourhood",
    "maximal_m_neighbourhood_members", "subinstances_with_adom_at_most",
    "direct_product", "direct_product_many", "disjoint_union",
    "intersection", "rename_apart", "union",
]
