"""Algebraic operations on instances: ⊗, ∩, ∪, disjoint union, renaming apart.

These are exactly the operations the paper's closure properties quantify
over: direct products (Definition 3.3), intersections (Definition 5.5),
unions and disjoint unions (used in the Section 9 lower-bound arguments).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from ..lang.schema import Relation
from ..lang.terms import Const, FreshConsts
from .instance import Instance, InstanceError

__all__ = [
    "direct_product",
    "direct_product_many",
    "intersection",
    "union",
    "disjoint_union",
    "rename_apart",
]


def direct_product(left: Instance, right: Instance) -> Instance:
    """``I ⊗ J`` (Definition in Section 3.2).

    The domain is the cartesian product; a tuple of pairs is a fact iff its
    left projection is a fact of ``I`` and its right projection a fact of
    ``J``.  Domain elements of the product are Python pairs ``(a, b)``.
    """
    left._check_same_schema(right)
    domain = {
        (a, b) for a in left.domain for b in right.domain
    }
    relations: dict[Relation, set[tuple]] = {}
    for rel in left.schema:
        tuples = set()
        for ltup, rtup in itertools.product(
            left.tuples(rel), right.tuples(rel)
        ):
            tuples.add(tuple(zip(ltup, rtup)))
        relations[rel] = tuples
    return Instance(left.schema, domain, relations)


def direct_product_many(instances: Sequence[Instance]) -> Instance:
    """``I1 ⊗ I2 ⊗ ... ⊗ Ik`` with flat k-tuples as domain elements.

    Using flat tuples (rather than nested pairs) matches the component
    notation ``c[i]`` used in the proof of Claim 4.8.
    """
    if not instances:
        raise InstanceError("direct product of zero instances is undefined")
    first = instances[0]
    for other in instances[1:]:
        first._check_same_schema(other)
    domain = set(itertools.product(*(inst.domain for inst in instances)))
    relations: dict[Relation, set[tuple]] = {}
    for rel in first.schema:
        tuples = set()
        for combo in itertools.product(
            *(inst.tuples(rel) for inst in instances)
        ):
            # combo is a k-tuple of ar(rel)-tuples; transpose it so that
            # position j holds the k-tuple of j-th components.
            tuples.add(tuple(zip(*combo)) if rel.arity else ())
        relations[rel] = tuples
    return Instance(first.schema, domain, relations)


def intersection(left: Instance, right: Instance) -> Instance:
    """``I ∩ J`` (Section 5): intersect domains and relations pointwise."""
    left._check_same_schema(right)
    domain = left.domain & right.domain
    relations = {
        rel: left.tuples(rel) & right.tuples(rel) for rel in left.schema
    }
    return Instance(left.schema, domain, relations)


def union(left: Instance, right: Instance) -> Instance:
    """``I ∪ J``: union of domains and of relations pointwise."""
    left._check_same_schema(right)
    domain = left.domain | right.domain
    relations = {
        rel: left.tuples(rel) | right.tuples(rel) for rel in left.schema
    }
    return Instance(left.schema, domain, relations)


def rename_apart(
    instance: Instance,
    avoid: Iterable[object],
    prefix: str = "@r",
) -> Instance:
    """An isomorphic copy whose domain avoids ``avoid`` entirely."""
    avoid_set = set(avoid)
    fresh = FreshConsts(
        prefix=prefix,
        avoid=(e for e in avoid_set | set(instance.domain) if isinstance(e, Const)),
    )
    mapping = {
        elem: (fresh() if elem in avoid_set else elem)
        for elem in instance.domain
    }
    return instance.rename(mapping)


def disjoint_union(left: Instance, right: Instance) -> Instance:
    """``I ⊎ J``: union after renaming ``right`` apart from ``left``."""
    left._check_same_schema(right)
    return union(left, rename_apart(right, left.domain))
