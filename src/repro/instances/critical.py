"""Critical instances and duplicating extensions.

* k-critical instances (Section 3.1): every possible tuple over a k-element
  domain is a fact.
* Duplicating extensions, in both the original (oblivious) form of
  Makowsky–Vardi and the paper's corrected *non-oblivious* form
  (Section 5).  Example 5.2 shows the oblivious form breaks closure for
  full tgds; the non-oblivious form repairs it.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from ..lang.schema import Relation, Schema
from ..lang.terms import Const
from .instance import Instance, InstanceError

__all__ = [
    "critical_instance",
    "critical_instance_over",
    "oblivious_duplicating_extension",
    "non_oblivious_duplicating_extension",
    "all_non_oblivious_duplicating_extensions",
]


def critical_instance_over(schema: Schema, domain: Iterable[object]) -> Instance:
    """The critical instance with the given (finite, non-empty) domain."""
    domain = frozenset(domain)
    if not domain:
        raise InstanceError("a critical instance needs a non-empty domain")
    relations: dict[Relation, set[tuple]] = {
        rel: set(itertools.product(domain, repeat=rel.arity))
        for rel in schema
    }
    return Instance(schema, domain, relations)


def critical_instance(schema: Schema, k: int, prefix: str = "c") -> Instance:
    """The k-critical instance over constants ``c0 .. c{k-1}``."""
    if k <= 0:
        raise InstanceError("criticality is defined for k > 0")
    return critical_instance_over(
        schema, (Const(f"{prefix}{i}") for i in range(k))
    )


def _check_duplication_args(
    instance: Instance, source: object, fresh: object
) -> None:
    if source not in instance.domain:
        raise InstanceError(f"{source!r} is not in the domain")
    if fresh in instance.domain:
        raise InstanceError(f"{fresh!r} is already in the domain")


def oblivious_duplicating_extension(
    instance: Instance, source: object, fresh: object
) -> Instance:
    """The Makowsky–Vardi duplicating extension (Section 5, original form).

    ``facts(J) = facts(I) ∪ h(facts(I))`` where ``h`` renames *every*
    occurrence of ``source`` to ``fresh``.  The paper shows (Example 5.2)
    that full-tgd ontologies are **not** closed under this operation.
    """
    _check_duplication_args(instance, source, fresh)
    copy = instance.rename({source: fresh})
    domain = instance.domain | {fresh}
    relations = {
        rel: instance.tuples(rel) | copy.tuples(rel) for rel in instance.schema
    }
    return Instance(instance.schema, domain, relations)


def non_oblivious_duplicating_extension(
    instance: Instance, source: object, fresh: object
) -> Instance:
    """The paper's corrected duplicating extension (Definition 5.3 setup).

    ``J`` contains a fact ``R(t̄)`` over ``dom(I) ∪ {fresh}`` iff collapsing
    ``fresh`` back to ``source`` yields a fact of ``I``.  Equivalently:
    every fact of ``I`` is "unmerged" by independently replacing each
    occurrence of ``source`` with either ``source`` or ``fresh``.
    """
    _check_duplication_args(instance, source, fresh)
    relations: dict[Relation, set[tuple]] = {}
    for rel in instance.schema:
        tuples: set[tuple] = set()
        for tup in instance.tuples(rel):
            positions = [i for i, elem in enumerate(tup) if elem == source]
            if not positions:
                tuples.add(tup)
                continue
            for choice in itertools.product(
                (source, fresh), repeat=len(positions)
            ):
                new = list(tup)
                for pos, value in zip(positions, choice):
                    new[pos] = value
                tuples.add(tuple(new))
        relations[rel] = tuples
    return Instance(instance.schema, instance.domain | {fresh}, relations)


def all_non_oblivious_duplicating_extensions(
    instance: Instance, fresh_prefix: str = "@d"
) -> Iterator[tuple[object, Instance]]:
    """Yield ``(duplicated_element, extension)`` for every domain element."""
    counter = itertools.count()
    for source in sorted(instance.domain, key=repr):
        while True:
            fresh = Const(f"{fresh_prefix}{next(counter)}")
            if fresh not in instance.domain:
                break
        yield source, non_oblivious_duplicating_extension(
            instance, source, fresh
        )
