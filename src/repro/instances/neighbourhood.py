"""m-neighbourhoods (Section 3.3) and the subinstance iterators they need.

The *m-neighbourhood* of a finite set ``F ⊆ adom(J)`` in ``J`` is the set
of instances ``{J' | F ⊆ adom(J'), J' ≤ J, |adom(J')| ≤ |F| + m}``; the
m-neighbourhood of a subinstance ``K ⊆ J`` is the m-neighbourhood of
``adom(K)``.

Neighbourhood members that differ only in inactive domain elements have
the same facts, and every fact-level question asked about a neighbourhood
(embeddability into some ``I`` fixing ``F``) is monotone under ``⊆``.  The
iterators below therefore yield one canonical member per induced domain
subset, which is complete for all the checks in this library:

* every ``J' ≤ J`` equals the induced restriction ``J|_{dom(J')}``, and
* if the restriction ``J|_D`` embeds into ``I`` (identity on ``F``), so
  does every ``J'' ≤ J`` with the same active domain.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from ..lang.terms import element_sort_key
from .instance import Instance, InstanceError

__all__ = [
    "m_neighbourhood",
    "maximal_m_neighbourhood_members",
    "induced_subinstances",
    "subinstances_with_adom_at_most",
]


def _sorted_elements(elements: Iterable[object]) -> list:
    return sorted(elements, key=element_sort_key)


def induced_subinstances(
    instance: Instance,
    *,
    base: frozenset | None = None,
    max_extra: int | None = None,
) -> Iterator[Instance]:
    """Induced restrictions ``I|_D`` for ``base ⊆ D ⊆ adom(I) ∪ base``.

    ``max_extra`` bounds ``|D \\ base|``.  Restrictions are enumerated over
    the active domain: adding inactive elements never changes the facts.
    """
    base = base or frozenset()
    if not base <= instance.domain:
        raise InstanceError("base must be a subset of dom(I)")
    pool = _sorted_elements(instance.active_domain - base)
    limit = len(pool) if max_extra is None else min(max_extra, len(pool))
    for size in range(limit + 1):
        for extra in itertools.combinations(pool, size):
            yield instance.restrict(base | set(extra))


def subinstances_with_adom_at_most(
    instance: Instance, bound: int
) -> Iterator[Instance]:
    """All induced ``K ≤ I`` (one per domain subset) with ``|adom(K)| ≤ bound``.

    Used for the "for every K ≤ I with |adom(K)| ≤ n" quantifier of local
    embeddability.  The empty restriction is always yielded first.
    """
    pool = _sorted_elements(instance.active_domain)
    for size in range(min(bound, len(pool)) + 1):
        for subset in itertools.combinations(pool, size):
            restriction = instance.restrict(frozenset(subset))
            # A strict subset of the chosen elements may be inactive in the
            # restriction; such a K is produced (with the same facts) by a
            # smaller subset, so skip duplicates.
            if len(restriction.active_domain) == size:
                yield restriction


def m_neighbourhood(
    host: Instance, anchor: Instance | Iterable[object], m: int
) -> Iterator[Instance]:
    """The m-neighbourhood of ``anchor`` in ``host`` (canonical members).

    ``anchor`` is either a set ``F ⊆ adom(host)`` or an instance ``K``
    (then ``F = adom(K)``).  Yields the induced restriction ``host|_D``
    for every ``F ⊆ D ⊆ adom(host)`` with ``|D| ≤ |F| + m`` in which all
    of ``F`` is still active.
    """
    if isinstance(anchor, Instance):
        focus = anchor.active_domain
    else:
        focus = frozenset(anchor)
    if not focus <= host.active_domain:
        # Elements of F that are inactive in the host can never become
        # active in a restriction, so the neighbourhood is empty.
        return
    for candidate in induced_subinstances(host, base=focus, max_extra=m):
        if focus <= candidate.active_domain:
            yield candidate


def maximal_m_neighbourhood_members(
    host: Instance, anchor: Instance | Iterable[object], m: int
) -> Iterator[Instance]:
    """Only the ⊆-maximal members (those with exactly ``|F| + m`` extra
    elements, plus the base restriction when the host is small).

    Sufficient for *embeddability* checks: if a maximal member embeds into
    ``I`` fixing ``F``, every subinstance of it embeds via the same map.
    Note the converse direction of locality checks (finding a violating
    ``J'``) must still consider all members; use :func:`m_neighbourhood`.
    """
    if isinstance(anchor, Instance):
        focus = anchor.active_domain
    else:
        focus = frozenset(anchor)
    if not focus <= host.active_domain:
        # No member can have all of F active: the neighbourhood is empty
        # (this arises for F-guarded anchors with empty K, Section 8.1).
        return
    pool = _sorted_elements(host.active_domain - focus)
    size = min(m, len(pool))
    for extra in itertools.combinations(pool, size):
        candidate = host.restrict(focus | set(extra))
        if focus <= candidate.active_domain:
            yield candidate
