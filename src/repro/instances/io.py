"""Loading and saving instances.

Two interchange formats:

* **directory of CSVs** — one ``<Relation>.csv`` per relation, one row
  per tuple (the shape every relational tool emits);
* **JSON** — a single document with the schema and relations, able to
  round-trip labeled nulls (serialized as ``{"null": i}``).

Dependency files are plain text (one rule per line) and handled by
:func:`repro.lang.parser.parse_tgds` / the CLI loader.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..lang.schema import Relation, Schema
from ..lang.terms import Const, Null
from .instance import Instance, InstanceError

__all__ = [
    "save_instance_csv",
    "load_instance_csv",
    "instance_to_json",
    "instance_from_json",
    "save_instance_json",
    "load_instance_json",
]


def save_instance_csv(instance: Instance, directory: Union[str, Path]) -> None:
    """Write one ``<Relation>.csv`` per relation (header = column index).

    Only constant elements can be written; nulls have no CSV story —
    use the JSON format for chase results.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for rel in instance.schema:
        path = directory / f"{rel.name}.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([f"c{i}" for i in range(rel.arity)])
            for tup in sorted(instance.tuples(rel), key=repr):
                row = []
                for elem in tup:
                    if not isinstance(elem, Const):
                        raise InstanceError(
                            f"CSV export supports constants only, got "
                            f"{elem!r}; use the JSON format"
                        )
                    row.append(elem.name)
                writer.writerow(row)


def load_instance_csv(
    directory: Union[str, Path], schema: Schema | None = None
) -> Instance:
    """Read every ``*.csv`` in the directory as a relation.

    Arities are inferred from the headers when no schema is given.
    """
    directory = Path(directory)
    relations: dict[Relation, set[tuple]] = {}
    for path in sorted(directory.glob("*.csv")):
        name = path.stem
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            arity = len(header)
            rel = (
                schema.relation(name) if schema is not None else Relation(name, arity)
            )
            if rel.arity != arity:
                raise InstanceError(
                    f"{path.name} has {arity} columns, schema says "
                    f"{rel.arity}"
                )
            tuples = relations.setdefault(rel, set())
            for row in reader:
                if len(row) != arity:
                    raise InstanceError(f"ragged row in {path.name}: {row}")
                tuples.add(tuple(Const(cell) for cell in row))
    if schema is None:
        schema = Schema(relations.keys())
    domain = {elem for tuples in relations.values() for tup in tuples for elem in tup}
    return Instance(schema, domain, relations)


def _element_to_json(elem: object):
    if isinstance(elem, Const):
        return elem.name
    if isinstance(elem, Null):
        return {"null": elem.index}
    raise InstanceError(f"cannot serialize element {elem!r}")


def _element_from_json(value):
    if isinstance(value, str):
        return Const(value)
    if isinstance(value, dict) and "null" in value:
        return Null(int(value["null"]))
    raise InstanceError(f"cannot deserialize element {value!r}")


def instance_to_json(instance: Instance) -> str:
    """A single JSON document (schema, relations, inactive elements)."""
    document = {
        "schema": {rel.name: rel.arity for rel in instance.schema},
        "relations": {
            rel.name: [
                [_element_to_json(e) for e in tup]
                for tup in sorted(instance.tuples(rel), key=repr)
            ]
            for rel in instance.schema
        },
        "inactive": [
            _element_to_json(e)
            for e in sorted(
                instance.domain - instance.active_domain, key=repr
            )
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def instance_from_json(text: str) -> Instance:
    document = json.loads(text)
    schema = Schema(
        Relation(name, arity)
        for name, arity in document["schema"].items()
    )
    relations: dict[Relation, set[tuple]] = {}
    domain = set()
    for name, rows in document.get("relations", {}).items():
        rel = schema.relation(name)
        tuples = set()
        for row in rows:
            tup = tuple(_element_from_json(v) for v in row)
            tuples.add(tup)
            domain.update(tup)
        relations[rel] = tuples
    for value in document.get("inactive", []):
        domain.add(_element_from_json(value))
    return Instance(schema, domain, relations)


def save_instance_json(instance: Instance, path: Union[str, Path]) -> None:
    Path(path).write_text(instance_to_json(instance))


def load_instance_json(path: Union[str, Path]) -> Instance:
    return instance_from_json(Path(path).read_text())
