"""Relational instances (the paper's central semantic objects).

An instance ``I`` over a schema ``S = {R1, ..., Rn}`` is a tuple
``(dom(I), R1^I, ..., Rn^I)`` where ``dom(I)`` is a set of domain elements
and ``Ri^I ⊆ dom(I)^{ar(Ri)}``.

Two containment relations matter and are easy to confuse:

* ``J ⊆ I``  — :meth:`Instance.is_subset_of` — ``facts(J) ⊆ facts(I)``.
* ``J ≤ I``  — :meth:`Instance.is_subinstance_of` — ``dom(J) ⊆ dom(I)``
  and ``R^J`` is the *restriction* of ``R^I`` to ``dom(J)`` for every R.

``J ≤ I`` implies ``J ⊆ I`` but not conversely (Section 2 of the paper).

Instances are immutable; all "mutators" return new instances.  The chase
uses its own mutable working state and converts at the end.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from typing import TYPE_CHECKING

from ..lang.atoms import Fact
from ..lang.parser import parse_facts
from ..lang.schema import Relation, Schema, SchemaError
from ..lang.terms import element_sort_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..columnar.store import ColumnarStore
    from ..stats.relation import RelationStats
    from .streaming import StreamSource

__all__ = ["BACKENDS", "DEFAULT_BACKEND", "Instance", "InstanceError"]

BACKENDS = ("object", "columnar")
"""Valid fact-storage backends.

``"object"`` is the reference representation (frozensets of element
tuples); ``"columnar"`` additionally carries an interned, column-
oriented sidecar (:mod:`repro.columnar`) that the compiled
homomorphism search executes against at integer-ID level.  Both
backends are bit-identical in every observable result — the backend is
a representation knob, never part of instance identity (``__eq__`` /
``__hash__`` ignore it).
"""

DEFAULT_BACKEND = "object"
"""The backend used when callers do not choose one explicitly."""


class InstanceError(ValueError):
    """Raised for ill-formed instances or mismatched operations."""


class Instance:
    """An immutable relational instance over a fixed schema."""

    __slots__ = ("_schema", "_domain", "_relations", "_facts_cache", "_hash",
                 "_index", "_sorted_extents", "_backend", "_columnar",
                 "_stats")

    def __init__(
        self,
        schema: Schema,
        domain: Iterable[object],
        relations: Mapping[Relation, Iterable[tuple]] | None = None,
        *,
        backend: str = DEFAULT_BACKEND,
    ):
        if backend not in BACKENDS:
            raise InstanceError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self._schema = schema
        self._domain = frozenset(domain)
        rels: dict[Relation, frozenset] = {}
        provided = dict(relations or {})
        for key in provided:
            if key not in schema:
                raise InstanceError(f"relation {key} not in schema {schema}")
        for rel in schema:
            tuples = frozenset(tuple(t) for t in provided.get(rel, ()))
            for tup in tuples:
                if len(tup) != rel.arity:
                    raise InstanceError(
                        f"tuple {tup!r} has wrong arity for {rel}"
                    )
                for elem in tup:
                    if elem not in self._domain:
                        raise InstanceError(
                            f"element {elem!r} of {rel.name}{tup!r} "
                            f"is not in the domain"
                        )
            rels[rel] = tuples
        self._relations = rels
        self._facts_cache: frozenset[Fact] | None = None
        self._hash: int | None = None
        self._index: dict[Relation, dict[tuple[int, object], tuple]] | None = None
        self._sorted_extents: dict[Relation, tuple] | None = None
        self._backend = backend
        self._columnar: "ColumnarStore | None" = None
        self._stats: dict[Relation, "RelationStats"] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _trusted(
        cls,
        schema: Schema,
        domain: frozenset,
        relations: dict,
        backend: str = DEFAULT_BACKEND,
    ) -> "Instance":
        """Internal fast path: build without validation.

        ``relations`` must map every relation of ``schema`` to a
        frozenset of well-formed tuples over ``domain``.  Used by the
        operations that preserve these invariants by construction
        (restrictions, renamings, products).
        """
        instance = cls.__new__(cls)
        instance._schema = schema
        instance._domain = domain
        instance._relations = relations
        instance._facts_cache = None
        instance._hash = None
        instance._index = None
        instance._sorted_extents = None
        instance._backend = backend
        instance._columnar = None
        instance._stats = None
        return instance

    @classmethod
    def empty(cls, schema: Schema) -> "Instance":
        """The empty instance (empty domain, empty relations)."""
        return cls(schema, ())

    @classmethod
    def from_facts(
        cls,
        schema: Schema,
        facts: Iterable[Fact],
        extra_domain: Iterable[object] = (),
    ) -> "Instance":
        """Build an instance whose domain is the active domain of ``facts``
        plus ``extra_domain``."""
        facts = list(facts)
        domain = set(extra_domain)
        rels: dict[Relation, set[tuple]] = {}
        for fact in facts:
            if fact.relation not in schema:
                raise InstanceError(f"{fact.relation} not in schema {schema}")
            rels.setdefault(fact.relation, set()).add(fact.elements)
            domain.update(fact.elements)
        return cls(schema, domain, rels)

    @classmethod
    def from_stream(
        cls,
        source: "StreamSource",
        *,
        schema: Schema | None = None,
        backend: str = DEFAULT_BACKEND,
        batch_size: int | None = None,
    ) -> "Instance":
        """Build an instance by one batched pass over a fact stream.

        ``source`` is a fact-stream file path, a
        :class:`~repro.instances.streaming.FactStream`, or any iterable
        of ``(relation, elements)`` rows (then ``schema=`` is
        required).  Equal to :meth:`from_facts` over the same rows, but
        never materializes the stream: rows are ingested in batches of
        ``batch_size`` with per-batch ``ingest.*`` telemetry, and on
        the columnar backend each batch is bulk-appended into the
        interned kernel (see :mod:`repro.instances.streaming`).
        """
        from .streaming import DEFAULT_BATCH_ROWS, instance_from_stream

        return instance_from_stream(
            source,
            schema=schema,
            backend=backend,
            batch_size=(
                DEFAULT_BATCH_ROWS if batch_size is None else batch_size
            ),
        )

    @classmethod
    def parse(cls, text: str, schema: Schema | None = None) -> "Instance":
        """Parse ``"R(a, b). S(b)"``; the schema is inferred if omitted."""
        facts = parse_facts(text, schema)
        if schema is None:
            schema = Schema(fact.relation for fact in facts)
        return cls.from_facts(schema, facts)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def domain(self) -> frozenset:
        return self._domain

    @property
    def backend(self) -> str:
        """The fact-storage backend (see :data:`BACKENDS`)."""
        return self._backend

    def with_backend(self, backend: str) -> "Instance":
        """This instance under another storage backend.

        Facts, domain, equality and hashing are unchanged — only the
        representation the engines execute against differs.  Returns
        ``self`` when the backend already matches.
        """
        if backend == self._backend:
            return self
        if backend not in BACKENDS:
            raise InstanceError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        return Instance._trusted(
            self._schema, self._domain, self._relations, backend
        )

    def columnar_kernel(self) -> "ColumnarStore | None":
        """The interned columnar sidecar, or ``None`` on the object
        backend.

        Built lazily on first use (relations in schema order, facts in
        canonical sorted order, so the dense value IDs are
        deterministic) and cached for the lifetime of the immutable
        instance.  The compiled homomorphism search dispatches on this
        hook.
        """
        if self._backend != "columnar":
            return None
        if self._columnar is None:
            # Imported here to keep repro.instances importable without
            # repro.columnar (which itself imports this module).
            from ..columnar.store import ColumnarStore

            store = ColumnarStore(tuple(self._schema))
            for rel in self._schema:
                for tup in self.sorted_tuples(rel):
                    store.append(rel, tup)
            self._columnar = store
        return self._columnar

    def relation_stats(self, relation: Relation) -> "RelationStats":
        """Per-relation distribution statistics (see :mod:`repro.stats`).

        Instances are immutable, so "incremental maintenance"
        degenerates to computing once on first request and caching for
        the instance's lifetime — the adaptive join-ordering strategy's
        stats hook costs one pass per relation ever.
        """
        if self._stats is None:
            self._stats = {}
        stats = self._stats.get(relation)
        if stats is None:
            from ..stats.relation import compute_stats

            stats = compute_stats(self._relations[relation], relation.arity)
            self._stats[relation] = stats
        return stats

    @property
    def active_domain(self) -> frozenset:
        """Elements occurring in at least one fact (``adom(I)``)."""
        active = set()
        for tuples in self._relations.values():
            for tup in tuples:
                active.update(tup)
        return frozenset(active)

    def tuples(self, relation: Relation | str) -> frozenset:
        if isinstance(relation, str):
            relation = self._schema.relation(relation)
        try:
            return self._relations[relation]
        except KeyError:
            raise InstanceError(f"{relation} not in schema") from None

    def tuples_with(
        self, relation: Relation | str, position: int, element: object
    ) -> tuple:
        """Facts of ``relation`` whose ``position``-th argument is
        ``element``.

        Backed by a lazily built per-relation, per-position hash index,
        so a probe is a dict lookup rather than a scan of the whole
        extent.  The index is built once per relation on first use and
        shared for the lifetime of the (immutable) instance.  Buckets
        are stored pre-sorted by
        :func:`repro.lang.terms.element_sort_key`, so the compiled join
        plans (:mod:`repro.homomorphisms.plans`) enumerate candidates
        in the canonical deterministic order without sorting per node.
        """
        if isinstance(relation, str):
            relation = self._schema.relation(relation)
        if self._index is None:
            self._index = {}
        by_pos = self._index.get(relation)
        if by_pos is None:
            buckets: dict[tuple[int, object], list] = {}
            try:
                tuples = self._relations[relation]
            except KeyError:
                raise InstanceError(f"{relation} not in schema") from None
            for tup in tuples:
                for pos, elem in enumerate(tup):
                    buckets.setdefault((pos, elem), []).append(tup)
            by_pos = {
                key: tuple(sorted(val, key=element_sort_key))
                for key, val in buckets.items()
            }
            self._index[relation] = by_pos
        return by_pos.get((position, element), ())

    # The index buckets are already sorted; expose them under the name
    # the compiled-plan executor probes for.
    sorted_tuples_with = tuples_with

    def sorted_tuples(self, relation: Relation | str) -> tuple:
        """The relation's extent as a tuple sorted by
        :func:`repro.lang.terms.element_sort_key` (cached)."""
        if isinstance(relation, str):
            relation = self._schema.relation(relation)
        if self._sorted_extents is None:
            self._sorted_extents = {}
        cached = self._sorted_extents.get(relation)
        if cached is None:
            cached = tuple(
                sorted(self.tuples(relation), key=element_sort_key)
            )
            self._sorted_extents[relation] = cached
        return cached

    def facts(self) -> frozenset[Fact]:
        """``facts(I)`` as a frozen set of :class:`Fact`."""
        if self._facts_cache is None:
            self._facts_cache = frozenset(
                Fact(rel, tup)
                for rel, tuples in self._relations.items()
                for tup in tuples
            )
        return self._facts_cache

    def fact_count(self) -> int:
        return sum(len(tuples) for tuples in self._relations.values())

    def has_fact(self, fact: Fact) -> bool:
        tuples = self._relations.get(fact.relation)
        return tuples is not None and fact.elements in tuples

    def is_empty(self) -> bool:
        return self.fact_count() == 0

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self.facts()))

    # ------------------------------------------------------------------
    # Containment
    # ------------------------------------------------------------------

    def is_subset_of(self, other: "Instance") -> bool:
        """``self ⊆ other``: fact containment."""
        self._check_same_schema(other)
        return all(
            tuples <= other._relations[rel]
            for rel, tuples in self._relations.items()
        )

    def is_subinstance_of(self, other: "Instance") -> bool:
        """``self ≤ other``: induced-substructure containment."""
        self._check_same_schema(other)
        if not self._domain <= other._domain:
            return False
        return all(
            self._relations[rel] == _restrict_tuples(other._relations[rel], self._domain)
            for rel in self._schema
        )

    def restrict(self, elements: Iterable[object]) -> "Instance":
        """The subinstance induced by ``elements`` (``I|_D``, so result ≤ I)."""
        domain = frozenset(elements)
        if not domain <= self._domain:
            raise InstanceError("restriction domain must be a subset of dom(I)")
        rels = {
            rel: _restrict_tuples(tuples, domain)
            for rel, tuples in self._relations.items()
        }
        return Instance._trusted(self._schema, domain, rels, self._backend)

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------

    def add_facts(self, facts: Iterable[Fact]) -> "Instance":
        rels = {rel: set(tuples) for rel, tuples in self._relations.items()}
        domain = set(self._domain)
        for fact in facts:
            if fact.relation not in self._schema:
                raise InstanceError(f"{fact.relation} not in schema")
            rels[fact.relation].add(fact.elements)
            domain.update(fact.elements)
        return Instance(self._schema, domain, rels, backend=self._backend)

    def remove_facts(self, facts: Iterable[Fact]) -> "Instance":
        """Drop facts (domain unchanged — removal can leave dead elements)."""
        rels = {rel: set(tuples) for rel, tuples in self._relations.items()}
        for fact in facts:
            rels.get(fact.relation, set()).discard(fact.elements)
        return Instance(self._schema, self._domain, rels, backend=self._backend)

    def with_domain(self, domain: Iterable[object]) -> "Instance":
        """Same facts, different domain (must cover the active domain).

        Useful for exercising *domain independence* (Definition 3.7).
        """
        domain = frozenset(domain)
        if not self.active_domain <= domain:
            raise InstanceError("new domain must contain the active domain")
        return Instance(self._schema, domain, self._relations, backend=self._backend)

    def shrink_domain(self) -> "Instance":
        """Drop inactive domain elements (``dom := adom``)."""
        return Instance(
            self._schema, self.active_domain, self._relations,
            backend=self._backend,
        )

    def with_schema(self, schema: Schema) -> "Instance":
        """Reinterpret over a super-schema (new relations are empty)."""
        if not self._schema <= schema:
            raise InstanceError("target schema must contain the current one")
        return Instance(schema, self._domain, self._relations, backend=self._backend)

    def project_schema(self, schema: Schema) -> "Instance":
        """Keep only the relations of a sub-schema (domain unchanged)."""
        if not schema <= self._schema:
            raise InstanceError("projection schema must be a sub-schema")
        rels = {rel: self._relations[self._schema.relation(rel.name)] for rel in schema}
        return Instance(schema, self._domain, rels, backend=self._backend)

    def rename(self, mapping: Mapping[object, object] | Callable) -> "Instance":
        """Apply an element mapping ``h`` and return the image instance.

        The mapping need not be injective: the result has domain
        ``h(dom(I))`` and facts ``h(facts(I))``.
        """
        func = mapping if callable(mapping) else (
            lambda elem: mapping.get(elem, elem)  # type: ignore[union-attr]
        )
        domain = frozenset(func(elem) for elem in self._domain)
        rels = {
            rel: frozenset(
                tuple(func(e) for e in tup) for tup in tuples
            )
            for rel, tuples in self._relations.items()
        }
        return Instance._trusted(self._schema, domain, rels, self._backend)

    # ------------------------------------------------------------------
    # Shape predicates used by the locality refinements
    # ------------------------------------------------------------------

    def is_guarded(self) -> bool:
        """Guarded instance (Section 7.1): empty, or some fact covers adom."""
        active = self.active_domain
        if not active:
            return True
        return any(
            active <= set(fact.elements) for fact in self.facts()
        )

    def is_guarded_relative_to(self, elements: Iterable[object]) -> bool:
        """``F``-guarded instance (Section 8.1)."""
        required = frozenset(elements)
        if self.is_empty():
            return True
        return any(
            required <= set(fact.elements) for fact in self.facts()
        )

    def is_critical(self) -> bool:
        """k-critical (Section 3.1): every possible tuple over dom is a fact."""
        k = len(self._domain)
        return all(
            len(tuples) == k ** rel.arity
            for rel, tuples in self._relations.items()
        )

    # ------------------------------------------------------------------
    # Equality / hashing / display
    # ------------------------------------------------------------------

    def _check_same_schema(self, other: "Instance") -> None:
        if self._schema != other._schema:
            raise SchemaError(
                f"schema mismatch: {self._schema} vs {other._schema}"
            )

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------

    # Ship only the semantic payload: indexes, sorted views and the
    # columnar sidecar rebuild lazily on the other side.  This keeps
    # the per-chunk instance pickles of the repro.search worker fan-out
    # small regardless of backend.

    def __getstate__(
        self,
    ) -> tuple[Schema, frozenset, dict, str]:
        return (self._schema, self._domain, self._relations, self._backend)

    def __setstate__(
        self, state: tuple[Schema, frozenset, dict, str]
    ) -> None:
        schema, domain, relations, backend = state
        self._schema = schema
        self._domain = domain
        self._relations = relations
        self._facts_cache = None
        self._hash = None
        self._index = None
        self._sorted_extents = None
        self._backend = backend
        self._columnar = None
        self._stats = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return (
            self._schema == other._schema
            and self._domain == other._domain
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self._schema,
                    self._domain,
                    tuple(sorted(
                        (rel.name, tuples)
                        for rel, tuples in self._relations.items()
                    )),
                )
            )
        return self._hash

    def __len__(self) -> int:
        return len(self._domain)

    def __str__(self) -> str:
        facts = ". ".join(str(f) for f in sorted(self.facts()))
        dead = sorted(self._domain - self.active_domain, key=element_sort_key)
        suffix = ""
        if dead:
            suffix = " [+dom: " + ", ".join(str(e) for e in dead) + "]"
        return ("{" + facts + "}" if facts else "{}") + suffix

    def __repr__(self) -> str:
        return f"Instance<{self}>"


def _restrict_tuples(tuples: frozenset, domain: frozenset) -> frozenset:
    return frozenset(
        tup for tup in tuples if all(elem in domain for elem in tup)
    )
