"""Exhaustive enumeration of instances over a bounded domain.

The paper's model-theoretic properties quantify over *all* instances; our
validation harness checks them exhaustively over all instances with a
bounded domain.  The space is exponential (``2^{Σ_R k^{ar(R)}}`` instances
over a k-element domain), so these generators are meant for the tiny
schemas used throughout the paper's own examples.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..lang.schema import Schema
from ..lang.terms import Const
from .instance import Instance

__all__ = [
    "default_domain",
    "all_instances",
    "all_instances_up_to",
    "all_extensions",
    "count_instances",
]


def default_domain(size: int, prefix: str = "a") -> tuple[Const, ...]:
    """A canonical domain ``a0 .. a{size-1}``."""
    return tuple(Const(f"{prefix}{i}") for i in range(size))


def _all_tuples(domain: Sequence[object], arity: int) -> list[tuple]:
    return list(itertools.product(domain, repeat=arity))


def all_instances(
    schema: Schema, domain: Sequence[object]
) -> Iterator[Instance]:
    """Every instance with *exactly* the given domain.

    Relations range over all subsets of ``domain^{ar(R)}``.
    """
    per_relation = [
        (rel, _all_tuples(sorted(domain, key=repr), rel.arity))
        for rel in schema
    ]
    subset_iters = [
        [
            frozenset(combo)
            for size in range(len(tuples) + 1)
            for combo in itertools.combinations(tuples, size)
        ]
        for __, tuples in per_relation
    ]
    for choice in itertools.product(*subset_iters):
        relations = {
            rel: chosen
            for (rel, __), chosen in zip(per_relation, choice)
        }
        yield Instance(schema, domain, relations)


def all_instances_up_to(
    schema: Schema, max_domain_size: int, prefix: str = "a"
) -> Iterator[Instance]:
    """Every instance whose domain is ``{a0..a{k-1}}`` for some k ≤ bound.

    Since ontologies are isomorphism-closed, checking a property over this
    family is equivalent to checking it over all instances with at most
    ``max_domain_size`` elements.
    """
    for k in range(max_domain_size + 1):
        yield from all_instances(schema, default_domain(k, prefix))


def all_extensions(
    base: Instance,
    extra_elements: Sequence[object],
) -> Iterator[Instance]:
    """Every instance ``J ⊇ base`` over ``dom(base) ∪ extra_elements``.

    Used to search for the witness ``J_K`` of local embeddability when the
    ontology is given axiomatically: candidates are extensions of ``K`` by
    a bounded number of fresh elements.
    """
    domain = tuple(base.domain) + tuple(extra_elements)
    optional: list = []
    for rel in base.schema:
        existing = base.tuples(rel)
        for tup in itertools.product(domain, repeat=rel.arity):
            if tup not in existing:
                optional.append((rel, tup))
    for size in range(len(optional) + 1):
        for combo in itertools.combinations(optional, size):
            relations = {rel: set(base.tuples(rel)) for rel in base.schema}
            for rel, tup in combo:
                relations[rel].add(tup)
            yield Instance(base.schema, domain, relations)


def count_instances(schema: Schema, domain_size: int) -> int:
    """``2^{Σ_R domain_size^{ar(R)}}`` — the size of one enumeration layer."""
    exponent = sum(domain_size ** rel.arity for rel in schema)
    return 2 ** exponent
