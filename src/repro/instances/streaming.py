"""Streaming fact IO — the disk format behind million-fact workloads.

The existing :mod:`repro.instances.io` loaders materialize an entire
JSON/CSV document before building the instance, which caps workloads at
whatever fits in a parsed DOM.  This module defines the *fact-stream v1*
format — one self-describing header line followed by one tab-separated
fact row per line — together with a buffered :class:`FactStreamWriter`
(rows accumulate in a fixed-size batch and hit the file handle as a
single ``write`` per flush) and a lazy :class:`FactStream` reader whose
construction cost is one header line, regardless of file size.

Format::

    #repro-factstream v1 {"schema": {"R": 2, "S": 1}}
    R\ta\tb
    S\tb

Rows hold ground facts over :class:`~repro.lang.terms.Const` elements
(the workload factory only ever emits those; labeled nulls belong to
chase *results*, which the materializing JSON writer already handles).
Constant names may not contain tabs or newlines — the writer rejects
them instead of producing an unparseable file.

:func:`instance_from_stream` is the ingestion path surfaced as
:meth:`Instance.from_stream <repro.instances.instance.Instance.from_stream>`:
rows are consumed in batches of ``batch_size``, deduplicated against
the growing fact sets, and — on the columnar backend — bulk-appended
into a :class:`~repro.columnar.store.ColumnarStore` via its
:meth:`~repro.columnar.store.ColumnarStore.extend_rows` fast path, so
the interned kernel is built *during* the single pass over the stream
instead of by a second full pass later.  Ingest telemetry:
``ingest.facts`` / ``ingest.batches`` counters and an
``ingest.batch_ms`` histogram, recorded per batch.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter
from types import TracebackType
from typing import IO, Iterable, Iterator, Sequence, Union

from ..lang.schema import Relation, Schema
from ..lang.terms import Const
from ..telemetry import TELEMETRY
from .instance import BACKENDS, DEFAULT_BACKEND, Instance, InstanceError

__all__ = [
    "DEFAULT_BATCH_ROWS",
    "FactStream",
    "FactStreamError",
    "FactStreamWriter",
    "instance_from_stream",
]

DEFAULT_BATCH_ROWS = 8192
"""Rows per writer flush / ingestion batch when callers don't choose."""

_HEADER_PREFIX = "#repro-factstream v1 "

Row = tuple[Relation, tuple[object, ...]]
"""One streamed fact: the relation and its element tuple."""

StreamSource = Union[str, Path, "FactStream", Iterable[Row]]


class FactStreamError(ValueError):
    """Raised for malformed fact-stream files or ill-formed rows."""


def _element_name(relation: Relation, element: object) -> str:
    """The on-disk spelling of one element (validated)."""
    if isinstance(element, Const):
        name = element.name
    elif isinstance(element, str):
        name = element
    else:
        raise FactStreamError(
            f"fact streams hold ground Const facts; got {element!r} "
            f"in a {relation.name} row"
        )
    if "\t" in name or "\n" in name or "\r" in name:
        raise FactStreamError(
            f"constant name {name!r} contains a tab/newline and cannot "
            f"be streamed"
        )
    return name


class FactStreamWriter:
    """Buffered fact-stream writer.

    Rows are formatted immediately but buffered; every ``batch_size``
    rows the buffer is joined and written in one call, so a million-row
    workload costs hundreds of ``write`` syscalls rather than a million.
    Use as a context manager (the final partial batch flushes on close):

    >>> with FactStreamWriter(path, schema) as writer:      # doctest: +SKIP
    ...     writer.write(rel, (Const("a"), Const("b")))

    Telemetry: ``workload.rows_written`` counts rows,
    ``workload.flushes`` counts buffer flushes.
    """

    def __init__(
        self,
        path: str | Path,
        schema: Schema,
        *,
        batch_size: int = DEFAULT_BATCH_ROWS,
    ) -> None:
        if batch_size < 1:
            raise FactStreamError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self._schema = schema
        self._batch_size = batch_size
        self._buffer: list[str] = []
        self._closed = False
        self.rows_written = 0
        self._handle: IO[str] = open(path, "w", encoding="utf-8")
        header = {
            "schema": {rel.name: rel.arity for rel in schema}
        }
        self._handle.write(
            _HEADER_PREFIX + json.dumps(header, sort_keys=True) + "\n"
        )

    def write(self, relation: Relation, elements: Sequence[object]) -> None:
        """Append one fact row (flushes when the batch fills)."""
        if self._closed:
            raise FactStreamError("writer is closed")
        if relation not in self._schema:
            raise FactStreamError(
                f"{relation} is not in the stream schema {self._schema}"
            )
        if len(elements) != relation.arity:
            raise FactStreamError(
                f"row {tuple(elements)!r} has wrong arity for {relation}"
            )
        parts = [relation.name]
        for element in elements:
            parts.append(_element_name(relation, element))
        self._buffer.append("\t".join(parts) + "\n")
        self.rows_written += 1
        if len(self._buffer) >= self._batch_size:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        self._handle.write("".join(self._buffer))
        self._buffer.clear()
        if TELEMETRY.enabled:
            TELEMETRY.count("workload.flushes")

    def close(self) -> None:
        """Flush the final partial batch and close the file."""
        if self._closed:
            return
        self._flush()
        self._handle.close()
        self._closed = True
        if TELEMETRY.enabled:
            TELEMETRY.count("workload.rows_written", self.rows_written)

    def __enter__(self) -> "FactStreamWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class FactStream:
    """A lazily iterable fact-stream file.

    Construction reads only the header line (schema discovery is O(1)
    in the file size); each ``iter()`` re-opens the file and yields
    ``(relation, elements)`` rows one line at a time, so a 10^7-row
    stream never materializes.  Repeated constant names resolve to the
    same :class:`Const` object within one pass (workload keys are
    Zipf-skewed, so the hit rate is high and the decoded instance
    shares element objects instead of duplicating them per row).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with open(self.path, "r", encoding="utf-8") as handle:
            header = handle.readline()
        if not header.startswith(_HEADER_PREFIX):
            raise FactStreamError(
                f"{self.path}: not a fact stream (missing "
                f"{_HEADER_PREFIX.strip()!r} header)"
            )
        try:
            payload = json.loads(header[len(_HEADER_PREFIX):])
            declared = payload["schema"]
            relations = [
                Relation(name, int(arity))
                for name, arity in declared.items()
            ]
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            raise FactStreamError(
                f"{self.path}: malformed fact-stream header: {exc}"
            ) from None
        self.schema = Schema(relations)

    def __iter__(self) -> Iterator[Row]:
        by_name = {rel.name: rel for rel in self.schema}
        consts: dict[str, Const] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            handle.readline()  # header
            for number, line in enumerate(handle, 2):
                line = line.rstrip("\n")
                if not line:
                    continue
                parts = line.split("\t")
                relation = by_name.get(parts[0])
                if relation is None:
                    raise FactStreamError(
                        f"{self.path}:{number}: unknown relation "
                        f"{parts[0]!r}"
                    )
                if len(parts) - 1 != relation.arity:
                    raise FactStreamError(
                        f"{self.path}:{number}: {relation} row has "
                        f"{len(parts) - 1} element(s)"
                    )
                elements = []
                for name in parts[1:]:
                    const = consts.get(name)
                    if const is None:
                        const = Const(name)
                        consts[name] = const
                    elements.append(const)
                yield (relation, tuple(elements))


def _resolve_source(
    source: StreamSource, schema: Schema | None
) -> tuple[Iterable[Row], Schema, bool]:
    """The row iterable, the effective schema, and whether rows are
    already validated (file streams validate while parsing)."""
    if isinstance(source, (str, Path)):
        source = FactStream(source)
    if isinstance(source, FactStream):
        effective = source.schema if schema is None else schema
        return source, effective, schema is None
    if schema is None:
        raise FactStreamError(
            "instance_from_stream needs an explicit schema= for plain "
            "row iterables (file streams carry one in their header)"
        )
    return source, schema, False


def instance_from_stream(
    source: StreamSource,
    *,
    schema: Schema | None = None,
    backend: str = DEFAULT_BACKEND,
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> Instance:
    """Build an :class:`Instance` by a single batched pass over rows.

    ``source`` is a fact-stream path, an open :class:`FactStream`, or
    any iterable of ``(relation, elements)`` rows (then ``schema=`` is
    required).  Rows are consumed in batches of ``batch_size``:
    duplicates are dropped, the domain grows by the elements seen, and
    on ``backend="columnar"`` each batch is bulk-appended into the
    instance's interned kernel via
    :meth:`~repro.columnar.store.ColumnarStore.extend_rows` — so the
    returned instance's kernel is already warm, without the second
    full pass the lazy :meth:`Instance.columnar_kernel` build would
    pay.  Every batch records ``ingest.facts`` / ``ingest.batches``
    and an ``ingest.batch_ms`` histogram observation.

    The result is equal (``==``, and bit-identical under every engine)
    to ``Instance.from_facts`` over the same rows — the streaming axis
    of ``tests/test_differential_chase.py`` pins that.
    """
    if batch_size < 1:
        raise FactStreamError(f"batch_size must be >= 1, got {batch_size}")
    if backend not in BACKENDS:
        raise InstanceError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    rows, effective_schema, validated = _resolve_source(source, schema)
    relations: dict[Relation, set[tuple[object, ...]]] = {
        rel: set() for rel in effective_schema
    }
    store = None
    if backend == "columnar":
        # Imported lazily so repro.instances keeps importing without
        # repro.columnar (which itself imports this package).
        from ..columnar.store import ColumnarStore

        store = ColumnarStore(tuple(effective_schema))

    enabled = TELEMETRY.enabled

    def ingest(chunk: list[Row]) -> None:
        started = perf_counter()
        pending: dict[Relation, list[tuple[object, ...]]] = {}
        for relation, elements in chunk:
            extent = relations.get(relation)
            if extent is None:
                raise FactStreamError(
                    f"{relation} is not in the schema {effective_schema}"
                )
            if not validated and len(elements) != relation.arity:
                raise FactStreamError(
                    f"row {elements!r} has wrong arity for {relation}"
                )
            # One hash probe instead of a membership test plus an add:
            # element hashing dominates ingestion, so the dedup pays
            # for the row tuple's hash exactly once.
            before = len(extent)
            extent.add(elements)
            if len(extent) == before:
                continue
            if store is not None:
                pending.setdefault(relation, []).append(elements)
        if store is not None:
            # The extent dedup above guarantees each pending row is new
            # to the store and unique within the batch, so the store
            # can skip its own per-row duplicate probe.
            for relation, fresh in pending.items():
                store.extend_rows(relation, fresh, assume_unique=True)
        if enabled:
            TELEMETRY.count("ingest.facts", len(chunk))
            TELEMETRY.count("ingest.batches")
            TELEMETRY.observe(
                "ingest.batch_ms", (perf_counter() - started) * 1e3
            )

    chunk: list[Row] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= batch_size:
            ingest(chunk)
            chunk = []
    if chunk:
        ingest(chunk)

    # The domain is derived once at the end instead of per row: on the
    # columnar backend the intern table already holds exactly the
    # elements of the deduplicated rows, and on the object backend one
    # pass over the (smaller, deduplicated) extents does it.
    if store is not None:
        domain: frozenset[object] = frozenset(store.table.elements)
    else:
        seen: set[object] = set()
        for extent in relations.values():
            for elements in extent:
                seen.update(elements)
        domain = frozenset(seen)

    instance = Instance._trusted(
        effective_schema,
        domain,
        {rel: frozenset(tuples) for rel, tuples in relations.items()},
        backend,
    )
    if store is not None:
        instance._columnar = store
    return instance
