"""Cores and retractions.

The *core* of a finite instance is a ⊆-minimal instance it retracts onto;
it is unique up to isomorphism.  Cores are not used by the paper's proofs
directly, but they are the standard tool for comparing chase results up to
homomorphic equivalence, which our tests use to validate universality.
"""

from __future__ import annotations

from ..instances.instance import Instance
from .search import all_homomorphisms, find_homomorphism

__all__ = ["find_proper_retraction", "core", "homomorphically_equivalent"]


def find_proper_retraction(
    instance: Instance,
) -> dict[object, object] | None:
    """An endomorphism whose image has a strictly smaller active domain
    and which is the identity on its image, or ``None`` if the instance
    is a core."""
    active = instance.active_domain
    for hom in all_homomorphisms(instance, instance):
        image = {hom[elem] for elem in active}
        if len(image) == len(active):
            continue
        # Turn the endomorphism into a retraction by iterating it; for a
        # finite instance some power of any non-injective endomorphism is
        # idempotent on the active domain.
        current = {elem: hom.get(elem, elem) for elem in instance.domain}
        for __ in range(len(instance.domain) + 1):
            composed = {
                elem: current[current[elem]] for elem in current
            }
            if composed == current:
                break
            current = composed
        image = {current[elem] for elem in active}
        if len(image) < len(active):
            return current
    return None


def core(instance: Instance) -> Instance:
    """The core, computed by repeatedly applying proper retractions."""
    current = instance.shrink_domain()
    while True:
        retraction = find_proper_retraction(current)
        if retraction is None:
            return current
        current = current.rename(retraction).shrink_domain()


def homomorphically_equivalent(left: Instance, right: Instance) -> bool:
    """Mutual homomorphic equivalence (same certain answers to all CQs)."""
    return (
        find_homomorphism(left, right) is not None
        and find_homomorphism(right, left) is not None
    )
