"""Compiled join plans for the backtracking homomorphism search.

The interpreted matcher in :mod:`repro.homomorphisms.search` re-derives
the atom order with an ``O(n)`` scan at every recursion node and
re-interprets every argument position (``isinstance`` / ``dict.get``)
for every candidate tuple — even when the same rule body is matched
thousands of times across chase rounds.  This module compiles a
conjunction once into a :class:`JoinPlan` and memoizes it, in the
spirit of classical join-ordering results (Ngo et al., worst-case
optimal joins; Gottlob et al., hypertree-width for CQ evaluation): the
variable/atom elimination order is computed *once per conjunction*, and
constraints are propagated eagerly (forward checking).

A plan consists of

* a **static atom order** chosen by the same greedy most-constrained
  heuristic the interpreter applies dynamically (most bound positions
  first, ties broken by the smallest relation extent, then by textual
  position) — join atoms are thereby matched before cartesian atoms;
* a per-step **precomputed check-list**: which positions are constants,
  which must agree with earlier bindings, which repeat a variable
  within the atom, and which bind new variables — replacing the
  per-tuple interpretation loop with precompiled ``(position, kind,
  reference)`` triples;
* **forward-checking probes**: as soon as a step binds a variable,
  every position of a not-yet-matched atom carrying that variable is
  probed against the target's positional index, and the branch is
  abandoned (``hom.forward_prunes``) the moment any bucket is empty.

Determinism contract
--------------------

The compiled path yields *byte-identical* streams to the interpreted
path: the same assignments, in the same order, with the same dict key
insertion order.  This works because the interpreter's dynamic choice
at each node depends only on (a) the conjunction's shape, (b) *which*
variables are bound (never on their values), and (c) the relative
order — with ties — of the relation extent sizes.  All three are part
of the plan key, so simulating the selection at compile time visits
atoms in exactly the order the interpreter would.  Candidate order is
preserved because the target's index buckets are stored pre-sorted by
:func:`repro.lang.terms.element_sort_key` (see
:meth:`repro.instances.instance.Instance.tuples_with`), which is the
same key the interpreter sorts by at every node.  Forward checking
only prunes branches that cannot yield an assignment, so it never
changes the stream.

Pluggable atom orderings
------------------------

Atom ordering is a strategy behind the :class:`Ordering` interface.
``order="static"`` (the default) keeps the byte-identical reference
order above.  ``order="adaptive"`` re-orders atoms per (conjunction,
instance statistics) using the selectivity cost model of
:mod:`repro.stats.cost`: backends expose O(1) per-relation statistics
snapshots (``relation_stats``), the model picks the
minimum-estimated-cost order, and a guard bound falls back to the
static order whenever the estimated worst case blows up
(``plan.guard_fallbacks``) or statistics are unavailable
(``plan.order_cold``).  Adaptive plans are cached under a *tagged* key
(the rank component is replaced by ``(-1, *order)``), so static plans
— including every plan-cache-keyed rewriting output — are never
disturbed.  Adaptive streams are correct but not byte-identical to
the reference: the differential grid asserts isomorphism and verdict
equality instead (see ``tests/test_differential_chase.py``).

Plan keys and memoization
-------------------------

Keys are renaming-invariant in the same style as
:mod:`repro.entailment.cache`: variables are replaced by slots numbered
by first occurrence, so ``R(x), S(x, y)`` and ``R(a), S(a, b)`` share a
plan.  (Unlike the entailment cache's bijection-minimized keys this is
exact only for order-preserving renamings — the common case for frozen
rule bodies — and structural otherwise; a missed sharing costs one
extra compile, never correctness.)  The key also carries the set of
initially-bound slots and the dense ranks of the relation extent
sizes, so a cached plan is only reused when the interpreter would have
made the same ordering decisions.  The cache is a bounded LRU; hits
and compiles are mirrored to the ``hom.plan_hits`` /
``hom.plan_compiles`` telemetry counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..lang.atoms import Atom
from ..lang.schema import Relation
from ..lang.terms import Const, Var, element_sort_key
from ..stats.cost import MISPREDICT_FACTOR, OrderDecision, choose_order
from ..stats.relation import RelationStats
from ..telemetry import TELEMETRY

__all__ = [
    "PLAN_MODES",
    "DEFAULT_PLAN",
    "ORDER_MODES",
    "DEFAULT_ORDER",
    "JoinPlan",
    "PlanStep",
    "PlanCache",
    "PLAN_CACHE",
    "Ordering",
    "StaticOrdering",
    "AdaptiveOrdering",
    "ORDERINGS",
    "conjunction_signature",
    "compile_plan",
    "execute_plan",
    "clear_order_memo",
]

PLAN_MODES = ("compiled", "interpreted")
"""Valid values for the ``plan`` parameter of the search entry points."""

DEFAULT_PLAN = "compiled"
"""The plan mode used when callers do not choose one explicitly."""

DEFAULT_PLAN_CACHE_SIZE = 4096

# Tag marking a plan key's rank component as an explicit atom order
# chosen by an adaptive ordering, ``(-1, *order)``.  Dense extent-size
# ranks are always non-negative, so the tag cannot collide with a
# static key.
_ADAPTIVE_TAG = -1

# Check kinds in PlanStep.checks (kept as ints for the hot filter loop).
_CHECK_CONST = 0  # tup[pos] == payload (a constant)
_CHECK_SLOT = 1  # tup[pos] == values[payload] (an earlier binding)
_CHECK_LOCAL = 2  # tup[pos] == tup[payload] (repeated var in this atom)

# Signature / key type aliases (shape is a tuple of per-atom entries).
_AtomShape = tuple[Relation, tuple[object, ...]]


class _Shape:
    """A conjunction shape with its hash computed once.

    Plan keys embed the (deeply nested) shape tuple; hashing it on
    every cache lookup would re-hash every relation and constant of the
    conjunction per call.  Shapes come out of the shape memo, so the
    same conjunction always presents the same ``_Shape`` instance and
    the identity test below short-circuits the common case; equality
    falls back to the underlying tuples, keeping renaming-invariant
    sharing between distinct-but-equal shapes."""

    __slots__ = ("atoms", "_hash")

    def __init__(self, atoms: tuple[_AtomShape, ...]) -> None:
        self.atoms = atoms
        self._hash = hash(atoms)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, _Shape) and self.atoms == other.atoms

    def __repr__(self) -> str:
        return f"_Shape({self.atoms!r})"


_PlanKey = tuple[_Shape, frozenset[int], tuple[int, ...]]


@dataclass(frozen=True)
class PlanStep:
    """One atom of the plan, fully resolved to slot-level operations.

    ``probes`` lists the bound positions in textual order as
    ``(position, is_slot, payload)`` — a constant payload or a slot to
    read the value from.  ``checks`` is the precompiled per-tuple
    filter; ``binds`` the first-occurrence positions that extend the
    assignment; ``forward`` the ``(relation, position, slot)`` buckets
    to probe right after this step binds its slots.
    """

    relation: Relation
    probes: tuple[tuple[int, bool, object], ...]
    checks: tuple[tuple[int, int, object], ...]
    binds: tuple[tuple[int, int], ...]
    forward: tuple[tuple[Relation, int, int], ...]

    @property
    def fully_bound(self) -> bool:
        return not self.binds


@dataclass(frozen=True)
class JoinPlan:
    """A compiled conjunction: static atom order plus per-step programs.

    ``order`` maps plan steps back to the indices of the input atom
    list (useful for diagnostics and tests).  ``prelude`` lists the
    index buckets determined before any search step runs — constants
    and initially-bound variables of every atom after the first — each
    as ``(relation, position, is_slot, payload)``; an empty bucket
    there proves the conjunction has no extension at all.
    ``bind_order`` is the slot binding sequence, which fixes the key
    insertion order of every yielded assignment.
    """

    key: _PlanKey
    order: tuple[int, ...]
    steps: tuple[PlanStep, ...]
    prelude: tuple[tuple[Relation, int, bool, object], ...]
    bind_order: tuple[int, ...]
    slot_count: int


class PlanCache:
    """A thread-safe bounded LRU of compiled plans.

    Mirrors hits and compiles to the ``hom.plan_hits`` /
    ``hom.plan_compiles`` telemetry counters (evictions to
    ``hom.plan_evictions``), in the style of
    :class:`repro.entailment.cache.EntailmentCache`.
    """

    __slots__ = ("maxsize", "hits", "compiles", "evictions", "_data", "_lock")

    def __init__(self, maxsize: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError("plan cache maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.compiles = 0
        self.evictions = 0
        self._data: OrderedDict[_PlanKey, JoinPlan] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: _PlanKey) -> JoinPlan:
        """The cached plan for ``key``, compiling (and counting) on miss."""
        with self._lock:
            plan = self._data.get(key)
            if plan is not None:
                self._data.move_to_end(key)
                self.hits += 1
        if plan is not None:
            if TELEMETRY.enabled:
                TELEMETRY.count("hom.plan_hits")
            return plan
        plan = compile_plan(key)
        evicted = 0
        with self._lock:
            self.compiles += 1
            self._data[key] = plan
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("hom.plan_compiles")
            if evicted:
                TELEMETRY.count("hom.plan_evictions", evicted)
        return plan

    def clear(self) -> None:
        """Drop all plans and zero the statistics."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.compiles = 0
            self.evictions = 0

    def info(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "compiles": self.compiles,
                "evictions": self.evictions,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"PlanCache(hits={info['hits']}, compiles={info['compiles']}, "
            f"evictions={info['evictions']}, size={info['size']}/"
            f"{info['maxsize']})"
        )


PLAN_CACHE = PlanCache()
"""The process-wide plan memo used by the compiled search path."""


class Ordering:
    """Pluggable atom-ordering strategy for compiled plans.

    Given a static plan key and the target the plan is about to run
    against, :meth:`plan_key` returns the key to compile/fetch under —
    possibly re-ordered — plus optional per-step candidate-pool
    estimates the executor compares actual fan-outs against
    (``plan.mispredictions``).  Returning the input key unchanged (and
    ``None`` estimates) is the fallback every strategy must support.
    """

    name: str = "?"

    def plan_key(
        self, key: _PlanKey, target: object
    ) -> tuple[_PlanKey, tuple[int, ...] | None]:
        raise NotImplementedError


class StaticOrdering(Ordering):
    """The reference strategy: the interpreter-simulating static order
    already encoded in the key.  Byte-identical to the interpreted
    path; the default, and the only order rewriting outputs are keyed
    under."""

    name = "static"

    def plan_key(
        self, key: _PlanKey, target: object
    ) -> tuple[_PlanKey, tuple[int, ...] | None]:
        return key, None


_ORDER_MEMO_CAP = 8192
# Order decisions memoized on (shape, bound slots, quantized stats
# fingerprint): target-independent, so one decision serves every
# instance whose statistics round to the same powers of two.
_OrderMemoKey = tuple[
    _Shape,
    frozenset[int],
    tuple[tuple[int, tuple[int, ...], tuple[int, ...]], ...],
]
_ORDER_MEMO: dict[_OrderMemoKey, OrderDecision] = {}


def clear_order_memo() -> None:
    """Drop memoized adaptive order decisions (cold-cache harnesses)."""
    _ORDER_MEMO.clear()


class AdaptiveOrdering(Ordering):
    """Statistics-driven ordering with guard-bound fallback.

    Consults the target's ``relation_stats`` duck-typed hook (both
    fact backends and :class:`~repro.instances.instance.Instance`
    provide it); cold statistics (no hook, or an empty relation) fall
    back to the static key (``plan.order_cold``), as does a guard-bound
    trip (``plan.guard_fallbacks``).  Successful adaptations count
    ``plan.order_adaptive`` and return the tagged key plus the cost
    model's per-step pool estimates.
    """

    name = "adaptive"

    def plan_key(
        self, key: _PlanKey, target: object
    ) -> tuple[_PlanKey, tuple[int, ...] | None]:
        stats_of = getattr(target, "relation_stats", None)
        if stats_of is None:
            if TELEMETRY.enabled:
                TELEMETRY.count("plan.order_cold")
            return key, None
        wrapper, bound_slots, _ranks = key
        shape = wrapper.atoms
        snapshots: list[RelationStats] = []
        for relation, _args in shape:
            stats: RelationStats | None = stats_of(relation)
            if stats is None or not stats.rows:
                if TELEMETRY.enabled:
                    TELEMETRY.count("plan.order_cold")
                return key, None
            snapshots.append(stats)
        memo_key: _OrderMemoKey = (
            wrapper,
            bound_slots,
            tuple(snap.fingerprint() for snap in snapshots),
        )
        decision = _ORDER_MEMO.get(memo_key)
        if decision is None:
            decision = choose_order(
                [
                    (snapshots[index], shape[index][1])
                    for index in range(len(shape))
                ],
                bound_slots,
            )
            if len(_ORDER_MEMO) >= _ORDER_MEMO_CAP:
                _ORDER_MEMO.clear()
            _ORDER_MEMO[memo_key] = decision
        if decision.guarded:
            if TELEMETRY.enabled:
                TELEMETRY.count("plan.guard_fallbacks")
            return key, None
        if TELEMETRY.enabled:
            TELEMETRY.count("plan.order_adaptive")
        adapted: _PlanKey = (
            wrapper,
            bound_slots,
            (_ADAPTIVE_TAG, *decision.order),
        )
        return adapted, decision.estimates


ORDERINGS: dict[str, Ordering] = {
    "static": StaticOrdering(),
    "adaptive": AdaptiveOrdering(),
}
"""The ordering strategy registry, keyed by the ``order=`` knob."""

ORDER_MODES = tuple(ORDERINGS)
"""Valid values for the ``order`` parameter of the search entry points."""

DEFAULT_ORDER = "static"
"""The ordering used when callers do not choose one explicitly."""


_SHAPE_MEMO_CAP = 65536
_ShapeEntry = tuple[_Shape, dict[Var, int], tuple[Var, ...]]
_SHAPE_MEMO: dict[tuple[Atom, ...], _ShapeEntry] = {}
# Identity front-cache: rule bodies are frozen tuples the chase passes
# unchanged thousands of times; recognizing the same object skips even
# the hashing of the atoms.  Values keep a strong reference to the
# keyed tuple, so an id is never reused while its entry is live.
_SHAPE_ID_MEMO: dict[int, tuple[tuple[Atom, ...], _ShapeEntry]] = {}


def _shape_of(atoms: Sequence[Atom]) -> _ShapeEntry:
    """The (shape, var→slot, slot variables) triple of a conjunction,
    memoized on the atom tuple — the chase matches the same frozen rule
    bodies thousands of times, so this is recomputed only for genuinely
    new conjunctions."""
    memo_key: tuple[Atom, ...]
    if isinstance(atoms, tuple):
        ident = _SHAPE_ID_MEMO.get(id(atoms))
        if ident is not None and ident[0] is atoms:
            return ident[1]
        memo_key = atoms
    else:
        memo_key = tuple(atoms)
    entry = _SHAPE_MEMO.get(memo_key)
    if entry is None:
        slot_of: dict[Var, int] = {}
        slot_vars: list[Var] = []
        shape: list[_AtomShape] = []
        for atom in memo_key:
            args_sig: list[object] = []
            for arg in atom.args:
                if isinstance(arg, Const):
                    args_sig.append(arg)
                else:
                    slot = slot_of.get(arg)
                    if slot is None:
                        slot = len(slot_vars)
                        slot_of[arg] = slot
                        slot_vars.append(arg)
                    args_sig.append(slot)
            shape.append((atom.relation, tuple(args_sig)))
        if len(_SHAPE_MEMO) >= _SHAPE_MEMO_CAP:
            _SHAPE_MEMO.clear()
        entry = (_Shape(tuple(shape)), slot_of, tuple(slot_vars))
        _SHAPE_MEMO[memo_key] = entry
    if len(_SHAPE_ID_MEMO) >= _SHAPE_MEMO_CAP:
        _SHAPE_ID_MEMO.clear()
    _SHAPE_ID_MEMO[id(memo_key)] = (memo_key, entry)
    return entry


def _signature_parts(
    atoms: Sequence[Atom],
    bound_vars: Iterable[Var],
    extent_sizes: Sequence[int],
) -> tuple[_PlanKey, tuple[Var, ...], dict[Var, int]]:
    """Internal: the plan key plus the memoized slot tables."""
    shape, slot_of, slot_vars = _shape_of(atoms)
    bound_slots = frozenset(
        slot_of[var] for var in bound_vars if var in slot_of
    )
    rank_of = {
        size: rank for rank, size in enumerate(sorted(set(extent_sizes)))
    }
    ranks = tuple(rank_of[size] for size in extent_sizes)
    return (shape, bound_slots, ranks), slot_vars, slot_of


def conjunction_signature(
    atoms: Sequence[Atom],
    bound_vars: Iterable[Var],
    extent_sizes: Sequence[int],
) -> tuple[_PlanKey, list[Var]]:
    """The renaming-invariant plan key of a conjunction, plus the
    variables backing each slot (first-occurrence order).

    ``extent_sizes`` must align with ``atoms`` (the size of each atom's
    relation extent in the target); only their dense ranks enter the
    key, so instances whose extents compare the same way share plans.
    """
    key, slot_vars, __ = _signature_parts(atoms, bound_vars, extent_sizes)
    return key, list(slot_vars)


def compile_plan(key: _PlanKey) -> JoinPlan:
    """Compile a plan from its key.

    The atom order is obtained by *simulating* the interpreter's
    most-constrained-first selection: at each step, among the remaining
    atoms in textual order, pick the first maximizing ``(bound
    positions, -extent rank)`` — exactly the ``max`` the interpreted
    path evaluates per node, but evaluated once.

    Keys whose rank component carries the adaptive tag
    (``(-1, *order)``) skip the simulation and compile the explicit
    atom order an :class:`AdaptiveOrdering` chose instead.
    """
    wrapper, bound_slots, ranks = key
    shape = wrapper.atoms
    explicit: tuple[int, ...] | None = None
    if ranks and ranks[0] == _ADAPTIVE_TAG:
        explicit = ranks[1:]
    remaining = list(range(len(shape)))
    bound: set[int] = set(bound_slots)
    order: list[int] = []
    steps: list[PlanStep] = []

    def boundness(index: int) -> int:
        return sum(
            1
            for arg in shape[index][1]
            if not isinstance(arg, int) or arg in bound
        )

    while remaining:
        if explicit is not None:
            chosen = explicit[len(order)]
        else:
            chosen = max(
                remaining, key=lambda i: (boundness(i), -ranks[i])
            )
        remaining.remove(chosen)
        relation, args = shape[chosen]
        probes: list[tuple[int, bool, object]] = []
        checks: list[tuple[int, int, object]] = []
        binds: list[tuple[int, int]] = []
        local_first: dict[int, int] = {}
        for pos, arg in enumerate(args):
            if not isinstance(arg, int):
                probes.append((pos, False, arg))
                checks.append((pos, _CHECK_CONST, arg))
            elif arg in bound:
                probes.append((pos, True, arg))
                checks.append((pos, _CHECK_SLOT, arg))
            elif arg in local_first:
                checks.append((pos, _CHECK_LOCAL, local_first[arg]))
            else:
                local_first[arg] = pos
                binds.append((pos, arg))
        bound.update(local_first)
        forward: list[tuple[Relation, int, int]] = []
        for later in remaining:
            later_relation, later_args = shape[later]
            for pos, arg in enumerate(later_args):
                if isinstance(arg, int) and arg in local_first:
                    forward.append((later_relation, pos, arg))
        steps.append(
            PlanStep(
                relation,
                tuple(probes),
                tuple(checks),
                tuple(binds),
                tuple(forward),
            )
        )
        order.append(chosen)

    prelude: list[tuple[Relation, int, bool, object]] = []
    for atom_index in order[1:]:
        relation, args = shape[atom_index]
        for pos, arg in enumerate(args):
            if not isinstance(arg, int):
                prelude.append((relation, pos, False, arg))
            elif arg in bound_slots:
                prelude.append((relation, pos, True, arg))

    bind_order = tuple(
        slot for step in steps for (_pos, slot) in step.binds
    )
    slot_count = len(
        {arg for _rel, args in shape for arg in args if isinstance(arg, int)}
    )
    return JoinPlan(
        key, tuple(order), tuple(steps), tuple(prelude), bind_order,
        slot_count,
    )


def _sorted_extent_fallback(
    target: object,
) -> Callable[[Relation], Sequence[tuple[object, ...]]]:
    def fallback(relation: Relation) -> Sequence[tuple[object, ...]]:
        return sorted(target.tuples(relation), key=element_sort_key)  # type: ignore[attr-defined]

    return fallback


def _sorted_bucket_fallback(
    target: object,
) -> Callable[[Relation, int, object], Sequence[tuple[object, ...]]]:
    def fallback(
        relation: Relation, position: int, element: object
    ) -> Sequence[tuple[object, ...]]:
        return sorted(
            target.tuples_with(relation, position, element),  # type: ignore[attr-defined]
            key=element_sort_key,
        )

    return fallback


def execute_plan(
    plan: JoinPlan,
    slot_vars: Sequence[Var],
    target: object,
    partial: Mapping[Var, object],
    injective: bool,
    slot_index: Mapping[Var, int] | None = None,
    estimates: Sequence[int] | None = None,
) -> Iterator[dict[Var, object]]:
    """Run a compiled plan against a target, yielding assignments in
    the interpreted path's exact order.

    ``target`` is anything exposing the positional-index probe
    interface (``tuples`` / ``tuples_with``); when it additionally
    offers pre-sorted views (``sorted_tuples`` / ``sorted_tuples_with``
    — both :class:`~repro.instances.instance.Instance` and the chase
    working state do), candidate enumeration performs no sorting at
    all.

    ``estimates`` (per-step expected candidate-pool sizes from an
    adaptive ordering) are compared against actual fan-outs at the
    ``hom.probe_fanout`` observation point; a pool more than
    :data:`repro.stats.cost.MISPREDICT_FACTOR` times its estimate
    counts one ``plan.mispredictions``.
    """
    steps = plan.steps
    tuples_of = target.tuples  # type: ignore[attr-defined]
    tuples_with = target.tuples_with  # type: ignore[attr-defined]
    sorted_extent = getattr(
        target, "sorted_tuples", None
    ) or _sorted_extent_fallback(target)
    sorted_bucket = getattr(
        target, "sorted_tuples_with", None
    ) or _sorted_bucket_fallback(target)

    values: list[object] = [None] * plan.slot_count
    if slot_index is None:
        slot_index = {var: slot for slot, var in enumerate(slot_vars)}
    for var, value in partial.items():
        # Only variables of the conjunction occupy slots; extras ride
        # along in the yielded dict via ``partial``.
        slot = slot_index.get(var)
        if slot is not None:
            values[slot] = value
    image: set[object] = set(partial.values()) if injective else set()

    # Prelude: constants and initially-bound variables of later atoms
    # must hit non-empty buckets, or the conjunction has no extension.
    for relation, pos, is_slot, payload in plan.prelude:
        probe_value = values[payload] if is_slot else payload  # type: ignore[index]
        if not tuples_with(relation, pos, probe_value):
            if TELEMETRY.enabled:
                TELEMETRY.count("hom.forward_prunes")
            return

    telemetry = TELEMETRY
    depth_count = len(steps)

    def search(depth: int) -> Iterator[dict[Var, object]]:
        if depth == depth_count:
            if telemetry.enabled:
                telemetry.count("hom.matches")
            result: dict[Var, object] = dict(partial)
            for slot in plan.bind_order:
                result[slot_vars[slot]] = values[slot]
            yield result
            return
        step = steps[depth]
        relation = step.relation
        candidates: Sequence[tuple[object, ...]]
        if not step.binds:
            # Fully determined: a single membership test, no probes —
            # mirroring the interpreted fast path (and its counters).
            ground = tuple(
                values[payload] if is_slot else payload  # type: ignore[index]
                for (_pos, is_slot, payload) in step.probes
            )
            candidates = (
                (ground,) if ground in tuples_of(relation) else ()
            )
        elif step.probes:
            best: Sequence[tuple[object, ...]] | None = None
            best_probe: tuple[int, object] | None = None
            consulted = 0
            empty = False
            for pos, is_slot, payload in step.probes:
                probe_value = values[payload] if is_slot else payload  # type: ignore[index]
                bucket = tuples_with(relation, pos, probe_value)
                consulted += 1
                if not bucket:
                    empty = True
                    break
                if best is None or len(bucket) < len(best):
                    best = bucket
                    best_probe = (pos, probe_value)
            if telemetry.enabled and consulted:
                telemetry.count("hom.index_probes", consulted)
            if empty:
                candidates = ()
            else:
                assert best_probe is not None
                candidates = sorted_bucket(relation, *best_probe)
        else:
            candidates = sorted_extent(relation)
        if telemetry.enabled and step.binds:
            # Same fan-out distribution the interpreted path records:
            # size of the candidate pool the step actually iterates.
            pool = len(candidates)
            telemetry.observe("hom.probe_fanout", pool)
            if (
                estimates is not None
                and pool > estimates[depth] * MISPREDICT_FACTOR
            ):
                telemetry.count("plan.mispredictions")
        checks = step.checks
        binds = step.binds
        forward = step.forward
        for tup in candidates:
            ok = True
            for pos, kind, payload in checks:
                if kind == _CHECK_CONST:
                    if tup[pos] != payload:
                        ok = False
                        break
                elif kind == _CHECK_SLOT:
                    if tup[pos] != values[payload]:  # type: ignore[index]
                        ok = False
                        break
                elif tup[pos] != tup[payload]:  # type: ignore[index]
                    ok = False
                    break
            if ok:
                added: list[int] = []
                for pos, slot in binds:
                    elem = tup[pos]
                    if injective and elem in image:
                        ok = False
                        break
                    if injective:
                        image.add(elem)
                    values[slot] = elem
                    added.append(slot)
                if ok:
                    pruned = False
                    for fwd_relation, fwd_pos, fwd_slot in forward:
                        if not tuples_with(
                            fwd_relation, fwd_pos, values[fwd_slot]
                        ):
                            pruned = True
                            if telemetry.enabled:
                                telemetry.count("hom.forward_prunes")
                            break
                    if not pruned:
                        yield from search(depth + 1)
                for slot in added:
                    if injective:
                        image.discard(values[slot])
                    values[slot] = None
            if telemetry.enabled:
                telemetry.count("hom.backtracks")

    yield from search(0)
