"""Isomorphism testing.

``I ≃ J`` iff there is a 1-1 homomorphism ``h`` from ``I`` onto ``J``
whose inverse is a homomorphism from ``J`` to ``I`` (Section 2).  For
finite instances this is equivalent to: ``h`` is a domain bijection and
``h(facts(I)) = facts(J)``.
"""

from __future__ import annotations

from typing import Iterator

from ..instances.instance import Instance
from .search import all_homomorphisms

__all__ = ["find_isomorphism", "are_isomorphic", "all_isomorphisms"]


def _profiles_match(left: Instance, right: Instance) -> bool:
    if len(left.domain) != len(right.domain):
        return False
    if len(left.active_domain) != len(right.active_domain):
        return False
    return all(
        len(left.tuples(rel)) == len(right.tuples(rel))
        for rel in left.schema
    )


def all_isomorphisms(
    left: Instance, right: Instance
) -> Iterator[dict[object, object]]:
    """All isomorphisms from ``left`` onto ``right``."""
    left._check_same_schema(right)
    if not _profiles_match(left, right):
        return
    for hom in all_homomorphisms(left, right, injective=True):
        # Injective + equal per-relation counts forces h(facts(I)) =
        # facts(J), hence the inverse is a homomorphism too; assert it.
        image = {fact.rename(hom) for fact in left.facts()}
        if image == set(right.facts()):
            yield hom


def find_isomorphism(
    left: Instance, right: Instance
) -> dict[object, object] | None:
    for iso in all_isomorphisms(left, right):
        return iso
    return None


def are_isomorphic(left: Instance, right: Instance) -> bool:
    """``I ≃ J``."""
    return find_isomorphism(left, right) is not None
