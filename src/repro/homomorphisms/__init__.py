"""Homomorphism search, isomorphism, cores."""

from .cores import core, find_proper_retraction, homomorphically_equivalent
from .isomorphism import all_isomorphisms, are_isomorphic, find_isomorphism
from .plans import (
    DEFAULT_ORDER,
    DEFAULT_PLAN,
    ORDER_MODES,
    ORDERINGS,
    PLAN_CACHE,
    PLAN_MODES,
    AdaptiveOrdering,
    JoinPlan,
    Ordering,
    PlanCache,
    StaticOrdering,
    compile_plan,
    conjunction_signature,
)
from .search import (
    all_extensions_of,
    all_homomorphisms,
    find_extension,
    find_homomorphism,
    satisfies_atoms,
)

__all__ = [
    "core", "find_proper_retraction", "homomorphically_equivalent",
    "all_isomorphisms", "are_isomorphic", "find_isomorphism",
    "all_extensions_of", "all_homomorphisms", "find_extension",
    "find_homomorphism", "satisfies_atoms",
    "DEFAULT_ORDER", "DEFAULT_PLAN", "ORDER_MODES", "ORDERINGS",
    "PLAN_CACHE", "PLAN_MODES", "AdaptiveOrdering", "JoinPlan",
    "Ordering", "PlanCache", "StaticOrdering",
    "compile_plan", "conjunction_signature",
]
