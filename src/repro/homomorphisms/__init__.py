"""Homomorphism search, isomorphism, cores."""

from .cores import core, find_proper_retraction, homomorphically_equivalent
from .isomorphism import all_isomorphisms, are_isomorphic, find_isomorphism
from .plans import (
    DEFAULT_PLAN,
    PLAN_CACHE,
    PLAN_MODES,
    JoinPlan,
    PlanCache,
    compile_plan,
    conjunction_signature,
)
from .search import (
    all_extensions_of,
    all_homomorphisms,
    find_extension,
    find_homomorphism,
    satisfies_atoms,
)

__all__ = [
    "core", "find_proper_retraction", "homomorphically_equivalent",
    "all_isomorphisms", "are_isomorphic", "find_isomorphism",
    "all_extensions_of", "all_homomorphisms", "find_extension",
    "find_homomorphism", "satisfies_atoms",
    "DEFAULT_PLAN", "PLAN_CACHE", "PLAN_MODES", "JoinPlan", "PlanCache",
    "compile_plan", "conjunction_signature",
]
