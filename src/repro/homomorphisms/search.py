"""Backtracking homomorphism search.

Two flavours are provided:

* **Conjunctive-query matching** — :func:`find_extension` /
  :func:`all_extensions_of`: map the variables of a conjunction of atoms
  into an instance so that every atom becomes a fact.  Constant arguments
  must match exactly (this is what evaluating a "frozen" query needs).

* **Instance-to-instance homomorphisms** — :func:`find_homomorphism` /
  :func:`all_homomorphisms`: a function ``h : dom(I) → dom(J)`` with
  ``h(facts(I)) ⊆ facts(J)``.  Note the paper's homomorphisms do *not*
  fix constants; use ``fixed`` to pin selected elements (e.g. "identity
  on adom(K)" in local embeddability).

Two execution paths compute identical streams (same assignments, same
order — the determinism contract tested by
``tests/test_join_plans.py``):

* ``plan="compiled"`` (default) — the conjunction is compiled once into
  a memoized :class:`~repro.homomorphisms.plans.JoinPlan` (static atom
  order, precompiled per-position check-lists, forward checking) and
  executed against the target's pre-sorted positional index;
* ``plan="interpreted"`` — the legacy reference path, which re-derives
  the most-constrained atom at every recursion node and sorts candidate
  buckets on every visit.  ``dynamic_order=False`` additionally forces
  textual atom order (the ablation baseline in
  ``benchmarks/bench_ablations.py``) and implies the interpreted path.

On the compiled path, ``order="adaptive"`` swaps the static
boundness/extent-rank atom order for one chosen per (conjunction,
instance-statistics) by the selectivity cost model in
:mod:`repro.stats.cost` — same assignment *set*, possibly a different
stream sequence, with a guard-bound fallback to static when the
estimated worst case blows up or statistics are cold.

Target tuples are indexed per relation and position and filtered on
bound positions; ``hom.index_probes`` counts one per bucket consulted.
"""

from __future__ import annotations

from typing import Collection, Iterator, Mapping, Protocol, Sequence

from ..instances.instance import BACKENDS, Instance
from ..lang.atoms import Atom
from ..lang.schema import Relation
from ..lang.terms import Const, Var, element_sort_key
from ..telemetry import TELEMETRY
from . import plans as _plans
from .plans import (
    ORDER_MODES,
    ORDERINGS,
    PLAN_CACHE,
    PLAN_MODES,
    _signature_parts,
    execute_plan,
)

__all__ = [
    "ProbeTarget",
    "find_extension",
    "all_extensions_of",
    "find_homomorphism",
    "all_homomorphisms",
    "satisfies_atoms",
]


class ProbeTarget(Protocol):
    """Anything exposing the positional-probe interface the search
    matches against: immutable :class:`Instance`\\ s, the chase's
    mutable working states (object or columnar), or any structurally
    compatible stand-in."""

    def tuples(
        self, relation: Relation
    ) -> Collection[tuple[object, ...]]: ...

    def tuples_with(
        self, relation: Relation, position: int, element: object
    ) -> Collection[tuple[object, ...]]: ...


def _resolve_plan(plan: str | None, dynamic_order: bool) -> str:
    """The effective plan mode; textual order forces the interpreter."""
    mode = _plans.DEFAULT_PLAN if plan is None else plan
    if mode not in PLAN_MODES:
        raise ValueError(
            f"unknown plan mode {plan!r}; expected one of {PLAN_MODES}"
        )
    if not dynamic_order:
        return "interpreted"
    return mode


def _resolve_order(order: str | None, mode: str) -> str:
    """The effective ordering strategy for a resolved plan mode.

    Adaptive ordering re-orders *compiled* plans; the interpreted
    reference path has no ordering hook, so requesting a non-static
    order there is a configuration error rather than a silent no-op.
    """
    effective = _plans.DEFAULT_ORDER if order is None else order
    if effective not in ORDER_MODES:
        raise ValueError(
            f"unknown order mode {order!r}; expected one of {ORDER_MODES}"
        )
    if effective != "static" and mode != "compiled":
        raise ValueError(
            f"order={effective!r} requires compiled plans "
            f"(got plan mode {mode!r})"
        )
    return effective


def _resolve_backend(target: ProbeTarget, backend: str | None) -> ProbeTarget:
    """Switch ``target`` to the requested storage backend.

    ``None`` keeps the target as-is (whatever backend it already
    carries).  Targets without a backend knob — the chase's working
    states already committed to one representation — are returned
    unchanged."""
    if backend is None:
        return target
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    switch = getattr(target, "with_backend", None)
    if switch is None:
        return target
    switched: ProbeTarget = switch(backend)
    return switched


def _candidates(
    atom: Atom,
    target: ProbeTarget,
    assignment: Mapping[Var, object],
) -> list[tuple[object, ...]]:
    """Target tuples compatible with the atom under the assignment.

    Bound positions (constants and already-assigned variables) are used
    to probe the target's per-relation, per-position hash index
    (:meth:`repro.instances.instance.Instance.tuples_with`); the
    smallest matching bucket is then filtered on the remaining
    constraints.  A fully bound atom degenerates to a single set
    membership test, and only fully unbound atoms fall back to the full
    extent.  ``hom.index_probes`` counts every bucket consulted — one
    per bound position, stopping early at the first empty bucket.
    """
    args = atom.args
    bound_values: list[object] = [None] * len(args)
    unbound = 0
    for pos, arg in enumerate(args):
        if isinstance(arg, Const):
            bound_values[pos] = arg
        else:
            value = assignment.get(arg)
            if value is None:
                unbound += 1
            else:
                bound_values[pos] = value
    if not unbound:
        # Every position determined: the only possible match is the
        # ground tuple itself.
        tup = tuple(bound_values)
        return [tup] if tup in target.tuples(atom.relation) else []
    pool = None
    if unbound < len(args):
        consulted = 0
        empty = False
        for pos, value in enumerate(bound_values):
            if value is None:
                continue
            bucket = target.tuples_with(atom.relation, pos, value)
            consulted += 1
            if not bucket:
                empty = True
                break
            if pool is None or len(bucket) < len(pool):
                pool = bucket
        if TELEMETRY.enabled and consulted:
            TELEMETRY.count("hom.index_probes", consulted)
        if empty:
            return []
    if pool is None:
        pool = target.tuples(atom.relation)
    if TELEMETRY.enabled:
        # Fan-out of the chosen pool: how selective the positional index
        # actually was for this atom (the distribution the join-plan
        # optimizer is trying to push toward small buckets).
        TELEMETRY.observe("hom.probe_fanout", len(pool))
    matches: list[tuple[object, ...]] = []
    for tup in pool:
        bound: dict[Var, object] = {}
        ok = True
        for arg, elem in zip(atom.args, tup):
            if isinstance(arg, Const):
                if arg != elem:
                    ok = False
                    break
            else:
                expected = assignment.get(arg, bound.get(arg))
                if expected is None:
                    bound[arg] = elem
                elif expected != elem:
                    ok = False
                    break
        if ok:
            matches.append(tup)
    return matches


def _boundness(atom: Atom, assignment: Mapping[Var, object]) -> int:
    return sum(
        1
        for arg in atom.args
        if isinstance(arg, Const) or arg in assignment
    )


def _search(
    atoms: Sequence[Atom],
    target: ProbeTarget,
    assignment: dict[Var, object],
    injective: bool,
    dynamic_order: bool,
    image: set[object] | None,
) -> Iterator[dict[Var, object]]:
    """The interpreted reference path.

    ``image`` is the running image of the assignment when ``injective``
    (``None`` otherwise): maintaining it alongside the assignment makes
    the injectivity probe O(1) per binding instead of an
    O(|assignment|) scan of ``assignment.values()``.
    """
    if not atoms:
        if TELEMETRY.enabled:
            TELEMETRY.count("hom.matches")
        yield dict(assignment)
        return
    if dynamic_order:
        # Most-constrained-first: maximize bound positions, break ties by
        # the smallest relation extent.  Ablated (vs textual order) in
        # benchmarks/bench_ablations.py; compiled once per conjunction by
        # repro.homomorphisms.plans.
        index = max(
            range(len(atoms)),
            key=lambda i: (
                _boundness(atoms[i], assignment),
                -len(target.tuples(atoms[i].relation)),
            ),
        )
    else:
        index = 0
    atom = atoms[index]
    rest = atoms[:index] + atoms[index + 1 :]
    for tup in sorted(_candidates(atom, target, assignment), key=element_sort_key):
        added: list[Var] = []
        ok = True
        for arg, elem in zip(atom.args, tup):
            if isinstance(arg, Const):
                continue
            if arg in assignment:
                if assignment[arg] != elem:
                    ok = False
                    break
            else:
                if injective:
                    assert image is not None
                    if elem in image:
                        ok = False
                        break
                    image.add(elem)
                assignment[arg] = elem
                added.append(arg)
        if ok:
            yield from _search(
                rest, target, assignment, injective, dynamic_order, image
            )
        if TELEMETRY.enabled:
            # One backtrack per candidate tuple explored and undone.
            TELEMETRY.count("hom.backtracks")
        for var in added:
            if injective:
                assert image is not None
                image.discard(assignment[var])
            del assignment[var]


def _iterate_compiled(
    atoms: Sequence[Atom],
    target: ProbeTarget,
    assignment: dict[Var, object],
    injective: bool,
    order: str = "static",
) -> Iterator[dict[Var, object]]:
    """Compile (or fetch) the conjunction's plan and execute it.

    Targets carrying an interned columnar sidecar (the
    ``backend="columnar"`` representation) execute the plan at
    integer-ID level via :mod:`repro.columnar.execute`; the stream and
    the counters are bit-identical either way.  The fully-bound fast
    path below is backend-neutral — a handful of set membership tests
    against the same per-relation sets both backends expose — so it is
    shared rather than duplicated per backend.
    """
    # Fully-bound fast path: the chase's restricted-activity checks ask
    # "does this ground head hold?" once per trigger — a handful of set
    # membership tests that must not pay for signatures or plan lookups.
    ground: list[tuple[object, ...]] | None = []
    for atom in atoms:
        resolved: list[object] = []
        for arg in atom.args:
            if isinstance(arg, Const):
                resolved.append(arg)
            else:
                value = assignment.get(arg)
                if value is None:
                    ground = None
                    break
                resolved.append(value)
        if ground is None:
            break
        ground.append(tuple(resolved))
    if ground is not None:
        for atom, tup in zip(atoms, ground):
            if tup not in target.tuples(atom.relation):
                return
            if TELEMETRY.enabled:
                TELEMETRY.count("hom.backtracks")
        if TELEMETRY.enabled:
            TELEMETRY.count("hom.matches")
        yield dict(assignment)
        return

    sizes = [len(target.tuples(atom.relation)) for atom in atoms]
    if 0 in sizes:
        # Some atom ranges over an empty relation: no extension exists.
        # (The interpreted path discovers this when it reaches the atom;
        # pruning up front keeps the stream identical — empty.)
        if TELEMETRY.enabled:
            TELEMETRY.count("hom.forward_prunes")
        return
    key, slot_vars, slot_index = _signature_parts(atoms, assignment, sizes)
    estimates: tuple[int, ...] | None = None
    if order != "static":
        # The strategy may re-order the key (adaptive) or return it
        # unchanged (cold statistics / guard fallback) — either way the
        # plan cache sees a well-formed key.
        key, estimates = ORDERINGS[order].plan_key(key, target)
    plan = PLAN_CACHE.get(key)
    kernel_of = getattr(target, "columnar_kernel", None)
    if kernel_of is not None:
        kernel = kernel_of()
        if kernel is not None:
            # Imported lazily: repro.columnar imports this module.
            from ..columnar.execute import execute_plan_columnar

            yield from execute_plan_columnar(
                plan, slot_vars, kernel, assignment, injective, slot_index,
                estimates,
            )
            return
    yield from execute_plan(
        plan, slot_vars, target, assignment, injective, slot_index, estimates
    )


def all_extensions_of(
    atoms: Sequence[Atom],
    target: ProbeTarget,
    partial: Mapping[Var, object] | None = None,
    *,
    injective: bool = False,
    dynamic_order: bool = True,
    plan: str | None = None,
    backend: str | None = None,
    order: str | None = None,
) -> Iterator[dict[Var, object]]:
    """All extensions of ``partial`` mapping every atom to a fact of
    ``target``.  Yields complete assignments (including ``partial``).

    ``plan`` selects the execution path (``None`` →
    :data:`repro.homomorphisms.plans.DEFAULT_PLAN`); both paths yield
    byte-identical streams.  ``dynamic_order=False`` matches atoms in
    textual order (the ablation baseline) on the interpreted path.
    ``backend`` switches the target's storage representation first
    (``None`` keeps whatever the target carries).  ``order`` selects
    the atom-ordering strategy of compiled plans (``None`` →
    :data:`repro.homomorphisms.plans.DEFAULT_ORDER`): ``"static"`` is
    byte-identical to the interpreter, ``"adaptive"`` re-orders from
    instance statistics and yields the same assignment *set* in a
    possibly different sequence."""
    mode = _resolve_plan(plan, dynamic_order)
    ordering = _resolve_order(order, mode)
    target = _resolve_backend(target, backend)
    assignment = dict(partial or {})
    # Keep tuple inputs (frozen rule bodies) intact: the plan layer's
    # identity memo recognizes the same conjunction object across calls.
    atom_seq = atoms if type(atoms) is tuple else tuple(atoms)
    return _dispatch(
        atom_seq, target, assignment, injective, dynamic_order, mode,
        ordering,
    )


def _dispatch(
    atoms: Sequence[Atom],
    target: ProbeTarget,
    assignment: dict[Var, object],
    injective: bool,
    dynamic_order: bool,
    mode: str,
    order: str = "static",
) -> Iterator[dict[Var, object]]:
    image: set[object] | None = None
    if injective:
        image = set(assignment.values())
        if atoms and len(image) != len(assignment):
            # A non-injective seed can never extend to an injective
            # assignment over a non-empty conjunction.
            return
    if mode == "compiled":
        yield from _iterate_compiled(
            atoms, target, assignment, injective, order
        )
    else:
        yield from _search(
            atoms, target, assignment, injective, dynamic_order, image
        )


def find_extension(
    atoms: Sequence[Atom],
    target: ProbeTarget,
    partial: Mapping[Var, object] | None = None,
    *,
    injective: bool = False,
    dynamic_order: bool = True,
    plan: str | None = None,
    backend: str | None = None,
    order: str | None = None,
) -> dict[Var, object] | None:
    """The first extension found, or ``None``."""
    for assignment in all_extensions_of(
        atoms, target, partial, injective=injective,
        dynamic_order=dynamic_order, plan=plan, backend=backend, order=order,
    ):
        return assignment
    return None


def satisfies_atoms(
    atoms: Sequence[Atom],
    target: ProbeTarget,
    partial: Mapping[Var, object] | None = None,
    *,
    dynamic_order: bool = True,
    plan: str | None = None,
    backend: str | None = None,
    order: str | None = None,
) -> bool:
    """Does some extension of ``partial`` map all atoms into ``target``?"""
    return (
        find_extension(
            atoms, target, partial, dynamic_order=dynamic_order, plan=plan,
            backend=backend, order=order,
        )
        is not None
    )


def _source_as_atoms(source: Instance) -> tuple[list[Atom], dict[object, Var]]:
    """Encode an instance as a conjunction of atoms, one variable per
    active-domain element."""
    as_var: dict[object, Var] = {}
    for i, elem in enumerate(sorted(source.active_domain, key=element_sort_key)):
        as_var[elem] = Var(f"__h{i}")
    atoms = [
        Atom(fact.relation, tuple(as_var[e] for e in fact.elements))
        for fact in sorted(source.facts())
    ]
    return atoms, as_var


def all_homomorphisms(
    source: Instance,
    target: Instance,
    fixed: Mapping[object, object] | None = None,
    *,
    injective: bool = False,
    plan: str | None = None,
    backend: str | None = None,
    order: str | None = None,
) -> Iterator[dict[object, object]]:
    """All homomorphisms ``h : dom(source) → dom(target)``.

    ``fixed`` pins selected source elements to target elements.  Inactive
    source elements are mapped to an arbitrary target element (their image
    is unconstrained); if the target domain is empty and the source has
    elements, no homomorphism exists.
    """
    source._check_same_schema(target)
    fixed = dict(fixed or {})
    inactive = source.domain - source.active_domain - set(fixed)
    if source.domain and not target.domain:
        return
    filler = (
        min(target.domain, key=element_sort_key) if target.domain else None
    )
    atoms, as_var = _source_as_atoms(source)
    partial: dict[Var, object] = {}
    for elem, value in fixed.items():
        if elem in as_var:
            partial[as_var[elem]] = value
    for assignment in all_extensions_of(
        atoms, target, partial, injective=injective, plan=plan,
        backend=backend, order=order,
    ):
        hom: dict[object, object] = {
            elem: assignment[var] for elem, var in as_var.items()
        }
        hom.update(fixed)
        if injective:
            # Inactive elements are unconstrained but must keep the map
            # injective: give each a distinct unused target element.
            used = set(hom.values())
            if len(used) != len(hom):
                continue
            spare = sorted(target.domain - used, key=element_sort_key)
            if len(spare) < len(inactive):
                continue
            for elem, value in zip(sorted(inactive, key=element_sort_key), spare):
                hom[elem] = value
        else:
            for elem in inactive:
                hom[elem] = filler
        yield hom


def find_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Mapping[object, object] | None = None,
    *,
    injective: bool = False,
    plan: str | None = None,
    backend: str | None = None,
    order: str | None = None,
) -> dict[object, object] | None:
    """The first homomorphism found, or ``None``."""
    for hom in all_homomorphisms(
        source, target, fixed, injective=injective, plan=plan,
        backend=backend, order=order,
    ):
        return hom
    return None
