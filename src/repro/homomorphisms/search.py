"""Backtracking homomorphism search.

Two flavours are provided:

* **Conjunctive-query matching** — :func:`find_extension` /
  :func:`all_extensions_of`: map the variables of a conjunction of atoms
  into an instance so that every atom becomes a fact.  Constant arguments
  must match exactly (this is what evaluating a "frozen" query needs).

* **Instance-to-instance homomorphisms** — :func:`find_homomorphism` /
  :func:`all_homomorphisms`: a function ``h : dom(I) → dom(J)`` with
  ``h(facts(I)) ⊆ facts(J)``.  Note the paper's homomorphisms do *not*
  fix constants; use ``fixed`` to pin selected elements (e.g. "identity
  on adom(K)" in local embeddability).

The search picks the most-constrained atom at each step (most bound
positions, then fewest candidate tuples) and backtracks.  Target tuples
are indexed per relation and filtered on bound positions.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..instances.instance import Instance
from ..lang.atoms import Atom
from ..lang.terms import Const, Var, element_sort_key
from ..telemetry import TELEMETRY

__all__ = [
    "find_extension",
    "all_extensions_of",
    "find_homomorphism",
    "all_homomorphisms",
    "satisfies_atoms",
]


def _candidates(
    atom: Atom,
    target: Instance,
    assignment: Mapping[Var, object],
) -> list[tuple]:
    """Target tuples compatible with the atom under the assignment.

    Bound positions (constants and already-assigned variables) are used
    to probe the target's per-relation, per-position hash index
    (:meth:`repro.instances.instance.Instance.tuples_with`); the
    smallest matching bucket is then filtered on the remaining
    constraints.  A fully bound atom degenerates to a single set
    membership test, and only fully unbound atoms fall back to the full
    extent.
    """
    args = atom.args
    bound_values: list = [None] * len(args)
    unbound = 0
    for pos, arg in enumerate(args):
        if isinstance(arg, Const):
            bound_values[pos] = arg
        else:
            value = assignment.get(arg)
            if value is None:
                unbound += 1
            else:
                bound_values[pos] = value
    if not unbound:
        # Every position determined: the only possible match is the
        # ground tuple itself.
        tup = tuple(bound_values)
        return [tup] if tup in target.tuples(atom.relation) else []
    pool = None
    if unbound < len(args):
        for pos, value in enumerate(bound_values):
            if value is None:
                continue
            bucket = target.tuples_with(atom.relation, pos, value)
            if pool is None or len(bucket) < len(pool):
                pool = bucket
                if not pool:
                    return []
        if TELEMETRY.enabled:
            TELEMETRY.count("hom.index_probes")
    if pool is None:
        pool = target.tuples(atom.relation)
    matches = []
    for tup in pool:
        bound: dict[Var, object] = {}
        ok = True
        for arg, elem in zip(atom.args, tup):
            if isinstance(arg, Const):
                if arg != elem:
                    ok = False
                    break
            else:
                expected = assignment.get(arg, bound.get(arg))
                if expected is None:
                    bound[arg] = elem
                elif expected != elem:
                    ok = False
                    break
        if ok:
            matches.append(tup)
    return matches


def _boundness(atom: Atom, assignment: Mapping[Var, object]) -> int:
    return sum(
        1
        for arg in atom.args
        if isinstance(arg, Const) or arg in assignment
    )


def _search(
    atoms: list[Atom],
    target: Instance,
    assignment: dict[Var, object],
    injective: bool,
    dynamic_order: bool = True,
) -> Iterator[dict[Var, object]]:
    if not atoms:
        if TELEMETRY.enabled:
            TELEMETRY.count("hom.matches")
        yield dict(assignment)
        return
    if dynamic_order:
        # Most-constrained-first: maximize bound positions, break ties by
        # the smallest relation extent.  Ablated (vs textual order) in
        # benchmarks/bench_ablations.py.
        index = max(
            range(len(atoms)),
            key=lambda i: (
                _boundness(atoms[i], assignment),
                -len(target.tuples(atoms[i].relation)),
            ),
        )
    else:
        index = 0
    atom = atoms[index]
    rest = atoms[:index] + atoms[index + 1 :]
    for tup in sorted(_candidates(atom, target, assignment), key=element_sort_key):
        added: list[Var] = []
        ok = True
        for arg, elem in zip(atom.args, tup):
            if isinstance(arg, Const):
                continue
            if arg in assignment:
                if assignment[arg] != elem:
                    ok = False
                    break
            else:
                if injective and elem in assignment.values():
                    ok = False
                    break
                assignment[arg] = elem
                added.append(arg)
        if ok:
            # The injectivity check above is per-position; re-validate the
            # newly added bindings against each other.
            if not injective or len(set(assignment.values())) == len(assignment):
                yield from _search(
                    rest, target, assignment, injective, dynamic_order
                )
        if TELEMETRY.enabled:
            # One backtrack per candidate tuple explored and undone.
            TELEMETRY.count("hom.backtracks")
        for var in added:
            del assignment[var]


def all_extensions_of(
    atoms: Sequence[Atom],
    target: Instance,
    partial: Mapping[Var, object] | None = None,
    *,
    injective: bool = False,
    dynamic_order: bool = True,
) -> Iterator[dict[Var, object]]:
    """All extensions of ``partial`` mapping every atom to a fact of
    ``target``.  Yields complete assignments (including ``partial``).

    ``dynamic_order=False`` matches atoms in textual order (the ablation
    baseline); the default picks the most-constrained atom each step."""
    assignment = dict(partial or {})
    yield from _search(
        list(atoms), target, assignment, injective, dynamic_order
    )


def find_extension(
    atoms: Sequence[Atom],
    target: Instance,
    partial: Mapping[Var, object] | None = None,
    *,
    injective: bool = False,
) -> dict[Var, object] | None:
    """The first extension found, or ``None``."""
    for assignment in all_extensions_of(
        atoms, target, partial, injective=injective
    ):
        return assignment
    return None


def satisfies_atoms(
    atoms: Sequence[Atom],
    target: Instance,
    partial: Mapping[Var, object] | None = None,
) -> bool:
    """Does some extension of ``partial`` map all atoms into ``target``?"""
    return find_extension(atoms, target, partial) is not None


def _source_as_atoms(source: Instance) -> tuple[list[Atom], dict[object, Var]]:
    """Encode an instance as a conjunction of atoms, one variable per
    active-domain element."""
    as_var: dict[object, Var] = {}
    for i, elem in enumerate(sorted(source.active_domain, key=element_sort_key)):
        as_var[elem] = Var(f"__h{i}")
    atoms = [
        Atom(fact.relation, tuple(as_var[e] for e in fact.elements))
        for fact in sorted(source.facts())
    ]
    return atoms, as_var


def all_homomorphisms(
    source: Instance,
    target: Instance,
    fixed: Mapping[object, object] | None = None,
    *,
    injective: bool = False,
) -> Iterator[dict[object, object]]:
    """All homomorphisms ``h : dom(source) → dom(target)``.

    ``fixed`` pins selected source elements to target elements.  Inactive
    source elements are mapped to an arbitrary target element (their image
    is unconstrained); if the target domain is empty and the source has
    elements, no homomorphism exists.
    """
    source._check_same_schema(target)
    fixed = dict(fixed or {})
    inactive = source.domain - source.active_domain - set(fixed)
    if source.domain and not target.domain:
        return
    filler = (
        min(target.domain, key=element_sort_key) if target.domain else None
    )
    atoms, as_var = _source_as_atoms(source)
    partial = {}
    for elem, value in fixed.items():
        if elem in as_var:
            partial[as_var[elem]] = value
    for assignment in all_extensions_of(
        atoms, target, partial, injective=injective
    ):
        hom: dict[object, object] = {
            elem: assignment[var] for elem, var in as_var.items()
        }
        hom.update(fixed)
        if injective:
            # Inactive elements are unconstrained but must keep the map
            # injective: give each a distinct unused target element.
            used = set(hom.values())
            if len(used) != len(hom):
                continue
            spare = sorted(target.domain - used, key=element_sort_key)
            if len(spare) < len(inactive):
                continue
            for elem, value in zip(sorted(inactive, key=element_sort_key), spare):
                hom[elem] = value
        else:
            for elem in inactive:
                hom[elem] = filler
        yield hom


def find_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Mapping[object, object] | None = None,
    *,
    injective: bool = False,
) -> dict[object, object] | None:
    """The first homomorphism found, or ``None``."""
    for hom in all_homomorphisms(source, target, fixed, injective=injective):
        return hom
    return None
