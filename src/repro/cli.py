"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``classify RULES``            — per-rule classes, widths, weak acyclicity
* ``chase RULES DATA``          — materialize the chase of a database
* ``entails RULES "RULE"``      — decide Σ ⊨ σ (three-valued)
* ``rewrite RULES --target T``  — Algorithm 1 / 2 / full-tgd search
* ``audit RULES``               — the model-theoretic property battery
* ``characterize RULES``        — Theorems 4.1/5.6/6.4/7.4/8.4 verdicts
* ``query RULES DATA "Q"``      — certain answers of a CQ (chase-based;
  ``--via-rewriting`` switches to UCQ rewriting for linear rules)
* ``lint RULES``                — static analysis: fragment
  explanations, termination certificates, hygiene, stratification
  (``--format text|json|sarif`` for CI consumption)
* ``genworkload OUT``           — write a deterministic layered Zipf
  workload as a streaming fact file (chase it back with
  ``chase RULES OUT --from-stream``)
* ``separations``               — re-derive the Section 9.1 separations
* ``bench``                     — run benchmark families; write/compare
  ``BENCH_*.json`` performance-trajectory files (``--compare`` gates
  wall-time and plan-quality regressions)
* ``stats TRACE.jsonl``         — summarize a telemetry trace file

``RULES`` is a file with one dependency per line (``#`` comments);
``DATA`` a file of facts like ``R(a, b). S(b)``.

Observability flags (available on every command):

* ``--profile``        — record spans + counters + histograms, print a
  report after the command output (to stderr under ``--quiet`` or when
  the command raised)
* ``--trace FILE.jsonl`` — stream span events plus final counter and
  histogram records to FILE.jsonl (summarize with
  ``python -m repro stats FILE.jsonl``); flushed even when the engine
  raises mid-run
* ``--trace-chrome FILE.json`` — export the span tree in Chrome
  trace-event format (load in ``chrome://tracing`` or
  ``ui.perfetto.dev``)
* ``--report FILE.json`` — write a schema-versioned ``RunReport``
  artifact: effective configuration, counters, histograms with
  p50/p90/p99 summaries, and a span-tree digest
* ``--quiet``          — suppress normal stdout for script use; the
  exit code carries the answer
* ``--version``        — print the package version and exit

Exit codes:

* ``0`` — success / the definitive answer is positive (``chase``
  reached a fixpoint without failing, ``rewrite`` succeeded,
  ``entails`` produced a definitive verdict, ``stats`` parsed the file)
* ``1`` — definitive negative: the chase failed on a constraint, the
  rewriting target class is unreachable (⊥ or inconclusive), the trace
  file was unreadable/malformed, or ``lint`` found a diagnostic at or
  above its ``--fail-on`` threshold (default ``error``) — regardless
  of output format
* ``2`` — undecided: ``entails`` exhausted its chase budget (UNKNOWN);
  also ``lint`` on an unreadable or unparseable rules file

argparse itself exits with ``2`` on usage errors and ``0`` for
``--help`` / ``--version``.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys
from pathlib import Path

from .analysis import render_json, render_sarif, render_text, run_lint
from .chase import chase, weak_acyclicity_report
from .dependencies import (
    TGD,
    TGDClass,
    affected_positions,
    classify,
    is_sticky_set,
    is_weakly_guarded_set,
    set_width,
)
from .entailment import entails, equivalent
from .instances import Instance, all_instances_up_to
from .lang import (
    format_dependencies,
    format_instance,
    parse_dependency,
    parse_facts,
)
from .ontology import AxiomaticOntology
from .omqa import CQ, certain_answers, rewrite_ucq
from .properties import (
    LocalityMode,
    characterize,
    criticality_report,
    domain_independence_report,
    intersection_closure_report,
    locality_report,
    product_closure_report,
)
from .rewriting import (
    frontier_guarded_to_guarded,
    guarded_to_linear,
    rewrite,
    linear_vs_guarded_witness,
    guarded_vs_frontier_guarded_witness,
    verify_separation,
)
from .search import SearchBudget
from .telemetry import (
    TELEMETRY,
    ChromeTraceSink,
    JSONLSink,
    MemorySink,
    build_run_report,
    render_report,
    summarize_jsonl,
)
from . import __version__

__all__ = ["main"]


def _load_dependencies_with_lines(path: str):
    """Dependencies of a rules file plus the 1-based source line of
    each (for SARIF regions)."""
    deps = []
    lines = []
    for number, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.split("#", 1)[0].strip()
        if line:
            deps.append(parse_dependency(line))
            lines.append(number)
    if not deps:
        raise SystemExit(f"no dependencies found in {path}")
    return deps, lines


def _load_dependencies(path: str):
    return _load_dependencies_with_lines(path)[0]


def _load_instance(path: str) -> Instance:
    facts = parse_facts(Path(path).read_text())
    from .lang import Schema

    return Instance.from_facts(Schema(f.relation for f in facts), facts)


def _cmd_classify(args) -> int:
    deps = _load_dependencies(args.rules)
    tgds = [d for d in deps if isinstance(d, TGD)]
    for dep in deps:
        if isinstance(dep, TGD):
            labels = ", ".join(sorted(str(c) for c in classify(dep)))
            n, m = dep.width
            print(f"{dep}\n    classes: {labels}; width: (n={n}, m={m})")
        else:
            print(f"{dep}\n    kind: {type(dep).__name__}")
    if tgds:
        n, m = set_width(tgds)
        print(f"\nset width: TGD_{{{n},{m}}}")
        report = weak_acyclicity_report(tgds)
        print(f"weakly acyclic: {report.weakly_acyclic}")
        if report.cycle:
            print(f"  special cycle through: {report.cycle}")
        print(f"weakly guarded: {is_weakly_guarded_set(tgds)}")
        print(f"sticky: {is_sticky_set(tgds)}")
        affected = sorted(affected_positions(tgds))
        if affected:
            rendered = ", ".join(f"{r}[{i}]" for r, i in affected)
            print(f"affected positions: {rendered}")
    return 0


def _cmd_chase(args) -> int:
    deps = _load_dependencies(args.rules)
    if args.from_stream:
        db = Instance.from_stream(args.data, backend=args.backend)
    else:
        db = _load_instance(args.data)
    result = chase(
        db, deps, max_rounds=args.max_rounds,
        max_memory_mb=args.max_memory_mb, delta_chunk=args.delta_chunk,
        certificate=args.certificate, backend=args.backend,
        order=args.order,
    )
    status = "failed (constraint violation)" if result.failed else (
        "terminated" if result.terminated else
        f"budget exhausted ({result.stop_reason})"
    )
    print(f"chase {status}: {result.fired} firings, "
          f"{result.nulls_created} nulls, {result.rounds} rounds")
    if args.no_instance:
        sizes = ", ".join(
            f"{rel.name}={len(result.instance.tuples(rel))}"
            for rel in result.instance.schema
            if result.instance.tuples(rel)
        )
        print(f"instance: {sizes or '(empty)'}")
    else:
        print(format_instance(result.instance))
    return 1 if result.failed else 0


def _cmd_genworkload(args) -> int:
    from time import perf_counter

    from .workloads.factory import WorkloadSpec, write_workload

    try:
        spec = WorkloadSpec(
            name=Path(args.out).stem,
            seed=args.seed,
            facts=args.facts,
            levels=args.levels,
            skew=args.skew,
            violation_rate=args.violations,
        )
    except ValueError as exc:
        print(f"genworkload: {exc}", file=sys.stderr)
        return 1
    started = perf_counter()
    rows = write_workload(spec, args.out, batch_size=args.batch_size)
    elapsed = perf_counter() - started
    rate = rows / elapsed if elapsed > 0 else float("inf")
    print(
        f"wrote {rows} facts to {args.out} "
        f"({elapsed:.2f}s, {rate:,.0f} facts/s, seed={spec.seed}, "
        f"levels={spec.levels}, skew={spec.skew}, "
        f"violations={spec.violation_rate})"
    )
    return 0


def _cmd_entails(args) -> int:
    deps = _load_dependencies(args.rules)
    conclusion = parse_dependency(args.rule)
    verdict = entails(
        deps, conclusion, max_rounds=args.max_rounds, backend=args.backend,
        order=args.order,
    )
    print(f"Σ ⊨ {conclusion}: {verdict}")
    return 0 if verdict.is_definite else 2


def _cmd_rewrite(args) -> int:
    deps = _load_dependencies(args.rules)
    tgds = [d for d in deps if isinstance(d, TGD)]
    if len(tgds) != len(deps):
        raise SystemExit("rewrite expects a pure tgd file")
    budget = None
    if args.max_candidates is not None or args.max_seconds is not None:
        budget = SearchBudget(
            max_candidates=args.max_candidates,
            max_seconds=args.max_seconds,
        )
    search_kwargs = dict(
        minimize=not args.no_minimize,
        jobs=args.jobs,
        search_budget=budget,
        backend=args.backend,
        order=args.order,
    )
    if args.target == "linear":
        result = guarded_to_linear(tgds, **search_kwargs)
    elif args.target == "guarded":
        result = frontier_guarded_to_guarded(tgds, **search_kwargs)
    else:
        result = rewrite(tgds, TGDClass.FULL, **search_kwargs)
    print(result)
    return 0 if result.succeeded else 1


def _cmd_audit(args) -> int:
    deps = _load_dependencies(args.rules)
    ontology = AxiomaticOntology(deps)
    tgds = [d for d in deps if isinstance(d, TGD)]
    n, m = set_width(tgds)
    print(f"ontology over {ontology.schema}, width (n={n}, m={m})")
    space = list(all_instances_up_to(ontology.schema, args.max_domain))
    print(f"instance space: {len(space)} (domain ≤ {args.max_domain})\n")
    print(criticality_report(ontology, max_k=2))
    print(product_closure_report(ontology, max_domain_size=1))
    print(domain_independence_report(ontology, space))
    print(intersection_closure_report(ontology, max_domain_size=1))
    for mode in (
        LocalityMode.GENERAL,
        LocalityMode.LINEAR,
        LocalityMode.GUARDED,
        LocalityMode.FRONTIER_GUARDED,
    ):
        print(locality_report(ontology, n, m, space, mode=mode, jobs=args.jobs))
    return 0


def _cmd_query(args) -> int:
    deps = _load_dependencies(args.rules)
    db = _load_instance(args.data)
    query = CQ.parse(args.query)
    if args.via_rewriting:
        result = rewrite_ucq(query, [d for d in deps if isinstance(d, TGD)])
        print(f"UCQ rewriting ({len(result.ucq)} disjuncts, "
              f"complete={result.complete}):")
        for disjunct in result.ucq:
            print(f"  {disjunct}")
        answers = result.ucq.evaluate(db)
    else:
        answers = certain_answers(db, deps, query)
    print("certain answers:")
    for tup in sorted(answers, key=str):
        print("  (" + ", ".join(str(e) for e in tup) + ")")
    if not answers:
        print("  (none)")
    return 0


def _cmd_characterize(args) -> int:
    deps = _load_dependencies(args.rules)
    ontology = AxiomaticOntology(deps)
    tgds = [d for d in deps if isinstance(d, TGD)]
    n, m = set_width(tgds)
    result = characterize(
        ontology, n, m, max_domain_size=args.max_domain, jobs=args.jobs
    )
    print(result)
    return 0


def _cmd_separations(args) -> int:
    for witness in (
        linear_vs_guarded_witness(),
        guarded_vs_frontier_guarded_witness(),
    ):
        outcome = verify_separation(witness)
        print(outcome)
    return 0


def _cmd_lint(args) -> int:
    try:
        deps, lines = _load_dependencies_with_lines(args.rules)
    except SystemExit:
        raise
    except (OSError, ValueError) as exc:
        print(f"lint: cannot load {args.rules}: {exc}", file=sys.stderr)
        return 2
    report = run_lint(
        deps,
        jobs=args.jobs,
        entailment=not args.no_entailment,
        deep=args.deep,
    )
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(
            report, artifact_uri=args.rules, rule_lines=lines
        )
    else:
        rendered = render_text(report, verbose=args.verbose)
    if args.output is not None:
        Path(args.output).write_text(rendered + "\n")
    else:
        print(rendered)
    return report.exit_code_for(args.fail_on)


def _cmd_bench(args) -> int:
    from .perf import (
        MissingBaselineError,
        apply_injection,
        compare_results,
        load_baseline,
        parse_injection,
        render_regressions,
        resolve_families,
        run_family,
    )

    try:
        families = resolve_families(args.families, smoke_only=args.smoke)
        factors = parse_injection(args.inject)
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 1
    out_dir = Path(args.out)
    if args.json:
        out_dir.mkdir(parents=True, exist_ok=True)
    results = []
    for family in families:
        result = apply_injection(
            run_family(family, repeats=args.repeat), factors
        )
        results.append(result)
        line = (
            f"{result.family:<22} best {result.best_seconds * 1e3:8.2f}ms "
            f"mean {result.mean_seconds * 1e3:8.2f}ms "
            f"({len(result.wall_seconds)} repeats)"
        )
        facts = result.counters.get("ingest.facts", 0)
        if facts:
            batches = result.counters.get("ingest.batches", 0)
            rate = facts / result.best_seconds
            line += (
                f" ingest {facts} facts/{batches} batches"
                f" ({rate:,.0f} facts/s)"
            )
        print(line)
        if args.json:
            path = result.write(out_dir)
            print(f"  wrote {path}")
    if args.compare is None:
        return 0
    regressions = []
    missing = []
    for result in results:
        try:
            baseline = load_baseline(args.compare, result.family)
        except MissingBaselineError as exc:
            # A family with no committed baseline is a hard comparison
            # failure, not a silent skip: a new family that never gets
            # baselined would otherwise never gate anything.
            print(f"bench: {exc}", file=sys.stderr)
            missing.append(result.family)
            continue
        except (OSError, ValueError) as exc:
            print(f"bench: {args.compare}: {exc}", file=sys.stderr)
            return 1
        regressions.extend(
            compare_results(
                baseline,
                result,
                wall_threshold=args.threshold,
                counter_threshold=args.threshold,
            )
        )
    print(render_regressions(regressions))
    if missing:
        print(
            "bench: missing baseline(s) for: " + ", ".join(missing),
            file=sys.stderr,
        )
        return 1
    return 1 if regressions else 0


def _cmd_stats(args) -> int:
    try:
        print(summarize_jsonl(args.tracefile))
    except (OSError, ValueError) as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="write telemetry span/counter events to FILE.jsonl",
    )
    common.add_argument(
        "--trace-chrome", metavar="FILE.json", default=None,
        help="write the span tree as Chrome trace events "
             "(load in chrome://tracing or ui.perfetto.dev)",
    )
    common.add_argument(
        "--profile", action="store_true",
        help="print a span/counter/histogram report after the command",
    )
    common.add_argument(
        "--report", metavar="FILE.json", default=None,
        help="write a schema-versioned RunReport JSON artifact "
             "(config, counters, histograms, span digest)",
    )
    common.add_argument(
        "--quiet", action="store_true",
        help="suppress normal output (exit code carries the answer)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "classify", parents=[common], help="classify the rules of a file"
    )
    p.add_argument("rules")
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("chase", parents=[common], help="chase a database")
    p.add_argument("rules")
    p.add_argument("data")
    p.add_argument("--max-rounds", type=int, default=None)
    p.add_argument(
        "--certificate", choices=("off", "auto"), default="off",
        help="'auto' drops --max-rounds when a termination certificate "
             "(weak/joint/super-weak acyclicity) guarantees a fixpoint",
    )
    p.add_argument(
        "--backend", choices=("object", "columnar"), default="object",
        help="fact-storage backend: 'columnar' runs joins over interned "
             "integer columns; results are bit-identical to 'object'",
    )
    p.add_argument(
        "--order", choices=("static", "adaptive"), default=None,
        help="atom ordering of compiled join plans: 'adaptive' re-orders "
             "from live instance statistics (tgd-only results identical; "
             "with egds isomorphic)",
    )
    p.add_argument(
        "--from-stream", action="store_true",
        help="DATA is a fact-stream file (#repro-factstream v1, e.g. "
             "from 'repro genworkload'); ingested in batches instead of "
             "parsed whole",
    )
    p.add_argument(
        "--max-memory-mb", type=int, default=None, metavar="MB",
        help="stop with a clean 'memory_budget' status when the "
             "process's peak RSS exceeds MB (POSIX only; no-op "
             "elsewhere)",
    )
    p.add_argument(
        "--delta-chunk", type=int, default=None, metavar="ROWS",
        help="process semi-naive deltas in chunks of ROWS log entries, "
             "bounding the materialized trigger batch (full-tgd "
             "results identical to unchunked)",
    )
    p.add_argument(
        "--no-instance", action="store_true",
        help="print per-relation sizes instead of the full instance "
             "(for large streamed runs)",
    )
    p.set_defaults(func=_cmd_chase)

    p = sub.add_parser(
        "genworkload", parents=[common],
        help="write a deterministic layered Zipf workload as a "
             "fact-stream file",
    )
    p.add_argument("out", help="output fact-stream path")
    p.add_argument(
        "--facts", type=int, default=10_000, metavar="N",
        help="base fact count (default 10000; violations add more)",
    )
    p.add_argument(
        "--levels", type=int, default=3, metavar="K",
        help="FK levels L0..L{K-1} (default 3, min 2)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="rng seed; identical seeds give byte-identical files",
    )
    p.add_argument(
        "--skew", type=float, default=1.0, metavar="S",
        help="Zipf exponent for level sizes and parent references "
             "(default 1.0; 0 = uniform)",
    )
    p.add_argument(
        "--violations", type=float, default=0.0, metavar="RATE",
        help="per-row probability of an FD-violating extra parent "
             "(default 0.0)",
    )
    p.add_argument(
        "--batch-size", type=int, default=8192, metavar="ROWS",
        help="writer buffer flush size (default 8192)",
    )
    p.set_defaults(func=_cmd_genworkload)

    p = sub.add_parser("entails", parents=[common], help="decide Σ ⊨ σ")
    p.add_argument("rules")
    p.add_argument("rule")
    p.add_argument("--max-rounds", type=int, default=None)
    p.add_argument(
        "--backend", choices=("object", "columnar"), default=None,
        help="fact-storage backend for the freeze-and-chase "
             "(default: the chase's own default; verdicts are "
             "backend-invariant)",
    )
    p.add_argument(
        "--order", choices=("static", "adaptive"), default=None,
        help="atom ordering of compiled join plans (verdicts are "
             "order-invariant)",
    )
    p.set_defaults(func=_cmd_entails)

    p = sub.add_parser("rewrite", parents=[common], help="Algorithms 1 / 2")
    p.add_argument("rules")
    p.add_argument(
        "--target", choices=("linear", "guarded", "full"), default="linear"
    )
    p.add_argument("--no-minimize", action="store_true")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="decide candidates in N worker processes "
             "(same output as N=1, see DESIGN.md §7)",
    )
    p.add_argument(
        "--max-candidates", type=int, default=None, metavar="K",
        help="search budget: stop after K candidates "
             "(an exhausted budget reports 'inconclusive')",
    )
    p.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="search budget: stop the candidate scan after S seconds",
    )
    p.add_argument(
        "--backend", choices=("object", "columnar"), default=None,
        help="fact-storage backend for every candidate/verification "
             "chase (results are backend-invariant)",
    )
    p.add_argument(
        "--order", choices=("static", "adaptive"), default=None,
        help="atom ordering of compiled join plans (results are "
             "order-invariant)",
    )
    p.set_defaults(func=_cmd_rewrite)

    p = sub.add_parser(
        "audit", parents=[common], help="model-theoretic property battery"
    )
    p.add_argument("rules")
    p.add_argument("--max-domain", type=int, default=1)
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallelize the locality batteries over N processes",
    )
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "query", parents=[common], help="certain answers of a CQ"
    )
    p.add_argument("rules")
    p.add_argument("data")
    p.add_argument("query")
    p.add_argument("--via-rewriting", action="store_true")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "characterize", parents=[common],
        help="which tgd classes axiomatize the ontology",
    )
    p.add_argument("rules")
    p.add_argument("--max-domain", type=int, default=2)
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallelize the locality batteries over N processes",
    )
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser(
        "lint", parents=[common],
        help="static analysis: fragments, certificates, hygiene",
    )
    p.add_argument("rules")
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (SARIF 2.1.0 for CI ingestion)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the per-rule passes in N worker processes "
             "(identical report for every N)",
    )
    p.add_argument(
        "--no-entailment", action="store_true",
        help="skip the chase-backed subsumption/redundancy passes",
    )
    p.add_argument(
        "--deep", action="store_true",
        help="run the engine-backed deep passes (semantic dead "
             "predicates, escalated subsumption, rewritability hints)",
    )
    p.add_argument(
        "--fail-on", choices=("error", "warning", "info"),
        default="error",
        help="exit 1 when a finding at or above this severity is "
             "present (default: error)",
    )
    p.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="repeat the concerned rule under each finding (text format)",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "separations", parents=[common], help="re-derive §9.1"
    )
    p.set_defaults(func=_cmd_separations)

    p = sub.add_parser(
        "bench", parents=[common],
        help="run benchmark families; write/compare BENCH_*.json "
             "trajectory files",
    )
    p.add_argument(
        "--families", metavar="A,B|all", default=None,
        help="comma-separated family names (default: all, or the smoke "
             "subset with --smoke)",
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="restrict the default selection to the CI smoke subset",
    )
    p.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="cold repeats per family (min is the comparison statistic)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="write a BENCH_<family>.json trajectory file per family",
    )
    p.add_argument(
        "--out", metavar="DIR", default=".",
        help="directory for --json artifacts (default: .)",
    )
    p.add_argument(
        "--compare", metavar="DIR", default=None,
        help="compare against baseline BENCH_*.json files in DIR; "
             "exit 1 on any wall-time or plan-quality regression",
    )
    p.add_argument(
        "--threshold", type=float, default=0.20, metavar="FRAC",
        help="regression threshold as a fraction (default 0.20 = +20%%)",
    )
    p.add_argument(
        "--inject", metavar="wall=F,probes=F", default=None,
        help="scale the current measurement synthetically (CI gate "
             "self-test; never applied to written baselines without "
             "your knowledge — injection happens before --json too)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "stats", parents=[common],
        help="summarize a --trace FILE.jsonl telemetry file",
    )
    p.add_argument("tracefile")
    p.set_defaults(func=_cmd_stats)

    return parser


def _run_config(args) -> dict:
    """The command's effective configuration for the RunReport artifact:
    every plain-valued option except the observability plumbing."""
    skip = {
        "func", "command", "profile", "trace", "trace_chrome", "report",
        "quiet",
    }
    config: dict = {"command": args.command}
    for key, value in sorted(vars(args).items()):
        if key in skip:
            continue
        if isinstance(value, (bool, int, float, str)) or value is None:
            config[key] = value
    return config


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    quiet = getattr(args, "quiet", False)
    memory: MemorySink | None = None
    sinks = []
    report_path = getattr(args, "report", None)
    if getattr(args, "profile", False) or report_path:
        memory = MemorySink()
        sinks.append(memory)
    if getattr(args, "trace", None):
        try:
            sinks.append(JSONLSink(args.trace))
        except OSError as exc:
            print(f"--trace: {exc}", file=sys.stderr)
            return 1
    if getattr(args, "trace_chrome", None):
        try:
            sinks.append(ChromeTraceSink(args.trace_chrome))
        except OSError as exc:
            print(f"--trace-chrome: {exc}", file=sys.stderr)
            return 1
    if sinks:
        TELEMETRY.reset()
        TELEMETRY.enable(*sinks)
    code: int | None = None
    try:
        if quiet:
            with contextlib.redirect_stdout(io.StringIO()):
                code = args.func(args)
        else:
            code = args.func(args)
    finally:
        # Runs on engine crashes too: disable() flushes the final
        # counter/histogram snapshots to every sink and close()s them
        # (JSONL flush, Chrome trace write), so a partial trace of a
        # failed run is still readable; the profile report and the
        # RunReport artifact are likewise emitted below.
        if sinks:
            TELEMETRY.disable()
        crashed = code is None
        if memory is not None and getattr(args, "profile", False):
            print(
                render_report(memory),
                file=sys.stderr if (quiet or crashed) else sys.stdout,
            )
        if report_path and memory is not None:
            run_report = build_run_report(
                args.command,
                _run_config(args),
                sink=memory,
                counters=memory.counters,
                histograms=memory.histograms,
            )
            try:
                run_report.write(report_path)
            except OSError as exc:
                print(f"--report: {exc}", file=sys.stderr)
                if code is not None:
                    code = 1
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
